"""Figure 2 — addressing the complexity: simulator acceleration.

(a) Simulation speed of native execution, MARSSx86, Graphite, Sniper,
    FAST (best-reported literature numbers) against *our* measured
    baseline simulator and RpStacks pipeline speeds.  The reproduced
    shape: acceleration methods are orders of magnitude faster than the
    detailed simulator, while RpStacks is *slower* than its own baseline
    simulator (extra collection + analysis).

(b) Total exploration time against the number of design points: every
    per-point method diverges linearly while RpStacks stays flat and
    eventually wins.
"""

import time

from conftest import BENCH_MACROS, get_session, write_report

from repro.dse.literature import LITERATURE_MIPS, acceleration_method_speeds
from repro.dse.overhead import exploration_curves, measure_overhead
from repro.dse.report import format_table
from repro.workloads.suite import make_workload

POINT_COUNTS = (1, 10, 100, 1000)


def test_fig02a_simulation_speed(benchmark):
    workload = make_workload("gamess", BENCH_MACROS)
    profile = measure_overhead(workload, eval_points=32, reeval_points=2)

    def run_simulation():
        from repro.simulator.core import simulate

        return simulate(workload, get_session("gamess").config)

    result = benchmark(run_simulation)
    measured_sim_uops_per_s = profile.num_uops / profile.simulate_seconds
    rpstacks_pipeline_seconds = (
        profile.simulate_seconds
        + profile.graph_build_seconds
        + profile.rpstacks_generate_seconds
    )
    measured_rp_uops_per_s = profile.num_uops / rpstacks_pipeline_seconds

    rows = [
        [name, f"{mips:.2f} MIPS", "literature best-reported"]
        for name, mips in sorted(
            LITERATURE_MIPS.items(), key=lambda kv: -kv[1]
        )
    ]
    rows.append(
        [
            "our simulator",
            f"{measured_sim_uops_per_s / 1e6:.6f} MIPS",
            "measured (this machine)",
        ]
    )
    rows.append(
        [
            "our rpstacks",
            f"{measured_rp_uops_per_s / 1e6:.6f} MIPS",
            "measured; slower than its own simulator, as in the paper",
        ]
    )
    report = "Figure 2a: simulation speed\n" + format_table(
        ["method", "speed", "source"], rows
    )
    write_report("fig02a_sim_speed.txt", report)
    assert measured_rp_uops_per_s < measured_sim_uops_per_s


def test_fig02b_exploration_divergence(benchmark):
    workload = make_workload("gamess", BENCH_MACROS)
    profile = measure_overhead(workload, eval_points=32, reeval_points=2)

    def sweep_thousand_points():
        method = profile.rpstacks_method()
        return [method.exploration_seconds(n) for n in POINT_COUNTS]

    benchmark(sweep_thousand_points)

    curves = exploration_curves(profile, design_points=POINT_COUNTS)
    # Literature acceleration methods scale linearly per point too.
    accel = acceleration_method_speeds(profile.num_uops)
    for method in accel:
        if method.name in ("graphite", "sniper", "fast"):
            curves[method.name] = [
                method.exploration_seconds(n) for n in POINT_COUNTS
            ]

    rows = [
        [name] + [f"{seconds:.3g}s" for seconds in series]
        for name, series in curves.items()
    ]
    report = (
        "Figure 2b: total exploration time vs number of designs\n"
        + format_table(
            ["method"] + [str(n) for n in POINT_COUNTS], rows
        )
    )
    write_report("fig02b_exploration_time.txt", report)

    # Shape checks: per-point methods diverge; RpStacks stays flat and
    # beats per-point simulation at 1000 designs.
    assert curves["simulator"][-1] > 100 * curves["simulator"][0]
    flat_growth = curves["rpstacks"][-1] / curves["rpstacks"][0]
    assert flat_growth < 2.0
    assert curves["rpstacks"][-1] < curves["simulator"][-1]
