"""Columnar trace representation — the materialisation tax, measured.

Before the columnar rework, every native simulate call paid an O(n)
Python loop converting the C outcome arrays into per-µop ``UopTrace``
records before anything downstream could run; at 200k µops that loop
dominated the 0.57s PR-6 simulate stage.  The columnar path hands the
graph builder ``TraceColumns`` straight from the C arrays with zero
per-row Python work, so the end-to-end cost of "simulate + trace
available to the graph builder" drops to array copies.

``test_trace_columns_smoke`` is the CI guard (reduced scale via
``REPRO_BENCH_COLUMNS_UOPS``): asserts digest parity between the
columnar result and a forced record materialisation, and that skipping
materialisation is measurably faster.  The full-size run backs the
committed numbers in ``results/trace_columns.txt`` and enforces the
issue's >=4x bar against the committed PR-6 native baseline.
"""

import os

import pytest
from conftest import best_of, timed, write_report

from repro.common.config import baseline_config
from repro.graphmodel.builder import build_graph
from repro.simulator.core import simulate
from repro.simulator.native import load_native_sim
from repro.simulator.traceio import result_digest
from repro.workloads.suite import LONG_TRACE_UOPS, make_long_trace

requires_native = pytest.mark.skipif(
    load_native_sim() is None,
    reason="no C compiler available (or REPRO_NATIVE=0)",
)

WORKLOAD = "gamess"

#: Committed PR-6 simulate-stage wall clock (results/sim_native.txt):
#: native prepass + timing *including* the per-µop record loop.
PR6_NATIVE_BASELINE_SECONDS = 0.57

#: Override for reduced-scale CI runs (µops floor of the long trace).
BENCH_UOPS = int(
    os.environ.get("REPRO_BENCH_COLUMNS_UOPS", LONG_TRACE_UOPS)
)


def _best_of(fn, reps):
    return best_of(fn, reps)


def _bench(workload, reps):
    config = baseline_config()
    # Untimed warm-up: shared-library build / cache probe.
    simulate(workload, config, native=True)

    def columnar():
        result = simulate(workload, config, native=True)
        # The deliverable: the trace is ready for the graph builder.
        assert result.columns.n == len(workload)
        return result

    def materialised():
        result = simulate(workload, config, native=True)
        # The PR-6-era tax: per-µop records built before anything runs.
        assert len(result.uops) == len(workload)
        return result

    columnar_result, columnar_seconds = _best_of(columnar, reps)
    assert columnar_result._uops is None  # never paid the tax
    materialised_result, materialised_seconds = _best_of(
        materialised, reps
    )
    assert result_digest(columnar_result) == result_digest(
        materialised_result
    )
    return columnar_result, columnar_seconds, materialised_seconds


@requires_native
def test_trace_columns_smoke():
    """CI guard: digest parity and a real saving even at reduced scale."""
    workload = make_long_trace(WORKLOAD, min_uops=min(BENCH_UOPS, 20_000))
    _, columnar_seconds, materialised_seconds = _bench(workload, reps=2)
    ratio = materialised_seconds / columnar_seconds
    assert ratio >= 1.5, (
        f"columnar simulate ({columnar_seconds:.3f}s) only {ratio:.2f}x "
        f"faster than record-materialising ({materialised_seconds:.3f}s)"
    )


@requires_native
def test_long_trace_columns():
    """The issue bar: >=4x vs the committed PR-6 native baseline."""
    workload = make_long_trace(WORKLOAD, min_uops=BENCH_UOPS)
    full_scale = BENCH_UOPS >= LONG_TRACE_UOPS
    result, columnar_seconds, materialised_seconds = _bench(
        workload, reps=3 if full_scale else 2
    )

    # Graph-build cost on columns (context for the report, untimed bar).
    graph, graph_seconds = timed(lambda: build_graph(result))

    tax = materialised_seconds - columnar_seconds
    uops_per_second = len(workload) / columnar_seconds
    lines = [
        f"Columnar trace representation ({WORKLOAD} long trace, "
        f"{len(workload):,} uops)",
        "",
        f"{'path':<52}{'wall-clock':>12}",
        f"{'-' * 52}{'-' * 12}",
        f"{'native simulate -> columns (graph-builder ready)':<52}"
        f"{columnar_seconds:>11.3f}s",
        f"{'native simulate + UopTrace materialisation':<52}"
        f"{materialised_seconds:>11.3f}s",
        f"{'columnar graph build (for context)':<52}"
        f"{graph_seconds:>11.3f}s",
        "",
        f"record-materialisation tax avoided:  {tax:.3f}s "
        f"({materialised_seconds / columnar_seconds:.1f}x)",
        f"columnar throughput:                 {uops_per_second:,.0f} uops/s",
        f"PR-6 committed native baseline:      "
        f"{PR6_NATIVE_BASELINE_SECONDS:.2f}s "
        f"(speedup {PR6_NATIVE_BASELINE_SECONDS / columnar_seconds:.1f}x)"
        if full_scale
        else f"(reduced scale: {len(workload):,} uops; no PR-6 comparison)",
        "",
        f"graph edges built from columns:      {graph.num_edges:,}",
        "results byte-identical (canonical sha256 digests match): yes",
        "timing: best-of-N wall clock per path, gc.collect() before "
        "each rep, untimed native warm-up excluded",
    ]
    report = "\n".join(lines)
    write_report(
        "trace_columns.txt" if full_scale else "trace_columns_ci.txt",
        report,
    )
    print()
    print(report)

    if full_scale:
        speedup = PR6_NATIVE_BASELINE_SECONDS / columnar_seconds
        assert speedup >= 4.0, (
            f"columnar simulate {columnar_seconds:.3f}s is only "
            f"{speedup:.2f}x the committed PR-6 baseline "
            f"({PR6_NATIVE_BASELINE_SECONDS:.2f}s); the bar is 4x"
        )
