"""Extension — streaming million-point sweep-engine throughput.

The ROADMAP north star asks for design-space exploration "as fast as
the hardware allows".  This bench measures the streaming sweep engine
(:func:`repro.dse.sweep.sweep_space`) against the baseline it replaces
— a per-point ``predict_cpi``/cost loop over materialised
:class:`LatencyConfig` objects — on a >1M-point latency space, and
records the bounded-memory evidence (peak candidate-set size) alongside
the throughput numbers.

``test_sweep_smoke`` is the CI guard: a small space, chunked must beat
the per-point loop.  The million-point run backs the committed numbers
in ``results/dse_sweep.txt``.
"""

from conftest import get_session, timed, write_report

from repro.common.events import EventType
from repro.dse.designspace import DesignSpace
from repro.dse.explorer import default_cost_model
from repro.dse.report import format_table
from repro.dse.sweep import sweep_space

#: >1M-point latency space (4*6*6*6*8*4*5*2*4 = 1,105,920 points).
MILLION_SPACE = {
    EventType.L1D: [1, 2, 3, 4],
    EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
    EventType.FP_MUL: [1, 2, 3, 4, 5, 6],
    EventType.L2D: [2, 4, 6, 8, 10, 12],
    EventType.MEM_D: [17, 33, 50, 66, 83, 100, 116, 133],
    EventType.LD: [1, 2, 3, 4],
    EventType.INT_MUL: [1, 2, 3, 4, 5],
    EventType.ST: [1, 2],
    EventType.DTLB: [5, 10, 15, 20],
}

SMALL_SPACE = {
    EventType.L1D: [1, 2, 3, 4],
    EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
    EventType.MEM_D: [33, 66, 133],
    EventType.L2D: [3, 6, 12],
}


def per_point_rate(model, space, sample: int) -> float:
    """Points/second of the baseline loop: materialise a design point,
    predict its CPI, cost it — exactly what ``Explorer.explore`` spends
    per point."""
    base = space.base

    def body():
        for index in range(sample):
            point = space.point_at(index)
            model.predict_cpi(point)
            default_cost_model(point, base)

    _, seconds = timed(body)
    return sample / seconds


def test_sweep_smoke():
    """CI guard: on even a small space the chunked path must beat the
    per-point loop."""
    model = get_session("gamess").rpstacks
    space = DesignSpace.from_mapping(SMALL_SPACE)
    result = sweep_space(model, space, chunk_size=4096)
    chunked_rate = result.metrics.points_per_second
    loop_rate = per_point_rate(model, space, space.num_points)
    assert chunked_rate > loop_rate, (
        f"chunked path ({chunked_rate:,.0f} pts/s) must beat the "
        f"per-point loop ({loop_rate:,.0f} pts/s)"
    )
    assert len(result.candidates) >= 1


def test_million_point_sweep(benchmark):
    session = get_session("gamess")
    model = session.rpstacks
    space = DesignSpace.from_mapping(MILLION_SPACE)
    assert space.num_points > 1_000_000
    target = session.baseline_cpi * 0.9

    result = benchmark.pedantic(
        sweep_space,
        args=(model, space),
        kwargs={"target_cpi": target, "chunk_size": 65536},
        iterations=1,
        rounds=1,
    )
    metrics = result.metrics
    loop_rate = per_point_rate(model, space, sample=20_000)
    speedup = metrics.points_per_second / loop_rate

    rows = [
        [
            "per-point loop (extrapolated)",
            f"{loop_rate / 1e3:.0f}k pts/s",
            f"{space.num_points / loop_rate:.1f}s",
            f"{space.num_points:,} (all materialised)",
        ],
        [
            "streamed chunks (jobs=1)",
            f"{metrics.points_per_second / 1e3:.0f}k pts/s",
            f"{metrics.total_seconds:.2f}s",
            f"{metrics.peak_candidates}",
        ],
    ]
    text = (
        f"Streaming DSE sweep engine ({space.num_points:,}-point latency "
        f"space, gamess model, {model.num_paths} paths)\n"
        + format_table(
            ["method", "throughput", "wall-clock", "resident candidates"],
            rows,
        )
        + f"\n\nspeedup over per-point loop: {speedup:.1f}x"
        f"\nPareto front: {len(result.pareto_front())} designs, "
        f"{result.num_meeting_target:,} points met target CPI "
        f"{target:.3f}"
        f"\nchunks: {metrics.num_chunks} x {metrics.chunk_size} "
        f"(mean {metrics.mean_chunk_seconds * 1e3:.1f}ms, "
        f"max {metrics.max_chunk_seconds * 1e3:.1f}ms)"
    )
    write_report("dse_sweep.txt", text)
    benchmark.extra_info["points_per_second"] = metrics.points_per_second
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["peak_candidates"] = metrics.peak_candidates

    # Acceptance floor: the chunked engine prices the space at least
    # 10x faster than the per-point loop, in bounded memory.
    assert speedup >= 10
    assert metrics.peak_candidates < space.num_points / 100
