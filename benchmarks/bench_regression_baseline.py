"""Empirical-model comparison — accuracy per simulation spent.

The paper's related work (Section VI) contrasts RpStacks with empirical
regression models that buy accuracy with *sampled simulations*.  This
bench measures that trade on our substrate: for growing training budgets
the regression's held-out error is compared against RpStacks, which
spends exactly one simulation.

Measured shape (honest): within one structure's latency space the true
cycles function is only mildly piecewise-linear, so regression converges
once it has ~8+ training simulations — but RpStacks matches small-budget
regression from a *single* run, which is the whole cost story: the
training budget multiplies across every structure explored (Fig 6c), and
the regression offers no bottleneck decomposition, only a black-box
number.
"""

import numpy as np

from conftest import get_session, write_report

from repro.baselines.regression import train_regression
from repro.common.events import EventType
from repro.dse.designspace import DesignSpace
from repro.dse.report import format_table

BUDGETS = (2, 4, 8, 16, 32)
WORKLOADS = ("gamess", "leslie3d")


def _held_out_error(predictor, machine, points):
    errors = []
    for point in points:
        simulated = machine.cycles(point)
        predicted = predictor.predict_cycles(point)
        errors.append(abs(predicted - simulated) / simulated * 100)
    return float(np.mean(errors))


def test_regression_accuracy_per_simulation(benchmark):
    rows = []
    summary = {}
    for name in WORKLOADS:
        session = get_session(name)
        base = session.config.latency
        space = DesignSpace.from_mapping(
            {
                EventType.L1D: [1, 2, 3, 4],
                EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
                EventType.FP_MUL: [1, 2, 3, 4, 5, 6],
                EventType.LD: [1, 2],
            },
            base=base,
        )
        held_out = space.sample(12, seed=99)
        rp_error = _held_out_error(
            session.rpstacks, session.machine, held_out
        )
        row = [name, f"{rp_error:.1f}% (1 sim)"]
        regression_errors = {}
        for budget in BUDGETS:
            predictor = train_regression(
                session.machine, space, budget, seed=7
            )
            error = _held_out_error(predictor, session.machine, held_out)
            regression_errors[budget] = error
            row.append(f"{error:.1f}%")
        rows.append(row)
        summary[name] = (rp_error, regression_errors)

    def evaluate_once():
        session = get_session(WORKLOADS[0])
        return session.rpstacks.predict_cycles(session.config.latency)

    benchmark(evaluate_once)

    text = (
        "Empirical regression baseline: held-out error vs training "
        "simulations\n"
        + format_table(
            ["application", "rpstacks"]
            + [f"regr@{b}" for b in BUDGETS],
            rows,
        )
    )
    write_report("regression_baseline.txt", text)

    for name, (rp_error, regression_errors) in summary.items():
        # RpStacks' single simulation beats small-budget regression and
        # stays competitive with budgets an order of magnitude larger.
        assert rp_error < regression_errors[2], name
        assert rp_error < regression_errors[4], name
        assert rp_error < max(8.0, regression_errors[32] * 3), name
