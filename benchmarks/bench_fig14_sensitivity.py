"""Figure 14 — RpStacks execution parameter sensitivity.

Sweeps the segment length and the cosine-similarity threshold, with
uniqueness preservation on and off, and reports the geometric means of
average error, max error and normalised analysis time over a set of
workloads — the three series of the figure.  Reproduced shape:

* disabling uniqueness preservation is fast but collapses accuracy
  (large peak errors), exactly the paper's finding;
* small segments inflate error through boundary over-traversals, large
  segments lose hidden paths to reduction — a U-shaped error curve;
* accuracy saturates with the threshold while analysis time keeps
  growing, motivating a mid-range choice (paper: 0.7).
"""

import numpy as np

from conftest import get_session, write_report

from repro.common.events import EventType
from repro.core.generator import generate_rpstacks
from repro.dse.report import format_table
from repro.dse.validate import (
    bottleneck_reduction_scenarios,
    validate_predictors,
)

WORKLOADS = ("gamess", "leslie3d", "namd", "gcc")
SEGMENT_LENGTHS = (64, 128, 256, 512)
THRESHOLDS = (0.5, 0.7, 0.9)


def _bottlenecks(session, count=2):
    ranked = sorted(
        session.cp1.cpi_stack().items(), key=lambda kv: -kv[1]
    )
    return [
        event
        for event, _value in ranked
        if event not in (EventType.BASE, EventType.BR_MISP)
    ][:count]


def _evaluate(threshold, segment_length, preserve_unique):
    """(geomean avg error, geomean max error, total analysis seconds)."""
    averages, maxima, seconds = [], [], 0.0
    for name in WORKLOADS:
        session = get_session(name)
        model = generate_rpstacks(
            session.graph,
            session.config.latency,
            similarity_threshold=threshold,
            segment_length=segment_length,
            preserve_unique=preserve_unique,
        )
        seconds += model.stats.analysis_seconds
        scenarios = bottleneck_reduction_scenarios(
            session.config.latency, _bottlenecks(session), 0.2
        )
        report = validate_predictors(
            session.machine, {"rpstacks": model}, scenarios
        )
        averages.append(max(0.01, report.mean_abs_error("rpstacks")))
        maxima.append(max(0.01, report.max_abs_error("rpstacks")))
    geo = lambda xs: float(np.exp(np.mean(np.log(xs))))  # noqa: E731
    return geo(averages), geo(maxima), seconds


def test_fig14_parameter_sensitivity(benchmark):
    # Benchmark one representative generation (the figure's x-axis cost).
    session = get_session("gamess")
    benchmark.pedantic(
        generate_rpstacks,
        args=(session.graph, session.config.latency),
        kwargs={"similarity_threshold": 0.7, "segment_length": 256},
        rounds=1,
        iterations=1,
    )

    rows = []
    results = {}
    for preserve in (True, False):
        for threshold in THRESHOLDS:
            avg, peak, seconds = _evaluate(threshold, 256, preserve)
            results[("tau", threshold, preserve)] = (avg, peak, seconds)
            rows.append(
                [
                    "on" if preserve else "off",
                    f"tau={threshold}",
                    "S=256",
                    f"{avg:.2f}%",
                    f"{peak:.2f}%",
                    f"{seconds:.2f}s",
                ]
            )
    for segment_length in SEGMENT_LENGTHS:
        avg, peak, seconds = _evaluate(0.7, segment_length, True)
        results[("seg", segment_length, True)] = (avg, peak, seconds)
        rows.append(
            [
                "on",
                "tau=0.7",
                f"S={segment_length}",
                f"{avg:.2f}%",
                f"{peak:.2f}%",
                f"{seconds:.2f}s",
            ]
        )

    text = (
        "Figure 14: RpStacks execution parameter sensitivity\n"
        "(geomean avg / max error over "
        + ", ".join(WORKLOADS)
        + "; Fig 11b-style scenarios)\n"
        + format_table(
            [
                "uniqueness",
                "cosine threshold",
                "segment length",
                "geomean avg err",
                "geomean max err",
                "analysis time",
            ],
            rows,
        )
    )
    write_report("fig14_sensitivity.txt", text)

    # Reproduced claims.
    chosen_avg, chosen_peak, chosen_seconds = results[("tau", 0.7, True)]
    no_unique = results[("tau", 0.7, False)]
    # 1. The chosen parameters keep max error within the paper's 15%.
    assert chosen_peak < 15.0
    # 2. Disabling uniqueness preservation never improves worst-case
    #    accuracy.  Deviation note (EXPERIMENTS.md): in our
    #    implementation its impact is second-order, because the modified
    #    cosine over stall-only dimensions already keeps rare-event
    #    paths dissimilar; the paper's 40%+ collapse suggests its
    #    similarity metric alone could not separate them.
    assert no_unique[1] >= chosen_peak - 0.5
    # 3. ... while being at most as expensive.
    assert no_unique[2] <= chosen_seconds * 1.2
