"""Figure 5 — stall-event stacks of execution paths and selected RpStacks.

Regenerates the figure's content for the 416.gamess analogue: the
surviving representative stall-event stacks (per graph segment, as the
paper generates them per SimPoint), sorted by baseline CPI, the leftmost
(largest) stack being the current design point's critical-path
decomposition.  The reproduced claims: execution paths share major stall
events, only a small number of distinct stacks survive, and different
stacks become the longest path under different latency configurations.
"""

import numpy as np

from conftest import get_session, write_report

from repro.common.events import EventType
from repro.core.generator import generate_rpstacks
from repro.dse.report import format_table

#: Latency configurations probed for path switches (baseline first).
PROBES = (
    {},
    {EventType.FP_ADD: 1, EventType.FP_MUL: 1, EventType.L1D: 1},
    {EventType.L1D: 1, EventType.LD: 1},
    {EventType.MEM_D: 400, EventType.L2D: 40},
)


def test_fig05_representative_stacks(benchmark):
    session = get_session("gamess")
    base = session.config.latency

    model = benchmark(
        generate_rpstacks, session.graph, base, 0.7, 128, 32, True
    )

    # Report: the stack population of the first segment, largest first.
    num_uops = len(session.workload)
    stacks = sorted(model.stacks(0), key=lambda s: -s.cycles(base))
    rows = [
        [
            f"path {index}",
            f"{stack.cycles(base):.0f}",
            stack.describe(base),
        ]
        for index, stack in enumerate(stacks)
    ]
    report = (
        "Figure 5: representative stall-event stacks "
        "(416.gamess analogue, segment 0 of the dependence graph)\n"
        + format_table(["stack", "cycles", "decomposition"], rows)
    )

    # Path switching: per probe configuration, how many segments elect a
    # different winning stack than at baseline?
    thetas = [base.with_overrides(dict(p)).as_vector() for p in PROBES]
    winners = []
    for theta in thetas:
        winners.append(
            tuple(
                int(np.argmax(seg @ theta))
                for seg in model.segment_stacks
            )
        )
    baseline_winners = winners[0]
    switch_counts = [
        sum(1 for a, b in zip(baseline_winners, w) if a != b)
        for w in winners
    ]
    report += (
        "\n\nsegments whose winning path switches vs baseline:\n"
        + "\n".join(
            f"  {dict(probe) or 'baseline'}: "
            f"{count}/{model.num_segments}"
            for probe, count in zip(PROBES, switch_counts)
        )
    )
    write_report("fig05_stacks.txt", report)

    # Reproduced properties: small distinct-stack populations; the top
    # stack of each segment is its critical path; and at least one probe
    # configuration makes hidden paths win somewhere.
    assert all(1 <= seg.shape[0] <= 32 for seg in model.segment_stacks)
    assert stacks[0].cycles(base) == max(s.cycles(base) for s in stacks)
    assert max(switch_counts[1:]) >= 1
