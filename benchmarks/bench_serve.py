"""Extension — serve daemon warm-path latency and throughput.

The ROADMAP north star is serving design-space queries to heavy
traffic, and the whole RpStacks bargain (one simulation, then
microsecond predictions) only pays off if the *serving* layer preserves
it: a warm ``/predict`` should cost HTTP overhead plus one
matrix-vector product, never a re-simulation.

``test_serve_smoke`` is the CI guard: the warm path must sustain the
committed ≥ 200 req/s floor with zero errors and byte-identical
bodies.  ``test_serve_load_report`` backs the committed numbers in
``results/serve.txt`` — closed-loop load runs per endpoint plus the
cold-build vs warm-hit amortisation the daemon exists to provide.
The governed headline numbers live in the ``serve_latency`` scenario
(``repro bench run serve_latency``; baselines in
``BENCH_serve_latency.json``) — this module is the wider lens.
"""

import json

from conftest import write_report

from repro.dse.report import format_table
from repro.obs.bench import measure
from repro.serve.loadgen import run_load
from repro.serve.server import ServeConfig, ServerThread

WORKLOAD = {"workload": "gamess", "macros": 300}

#: The committed floor (matches tests/serve/test_load.py and the ISSUE).
MIN_REQUESTS_PER_SECOND = 200.0


def _start_server(tmp_path, **overrides):
    overrides.setdefault("cache_dir", str(tmp_path / "cache"))
    overrides.setdefault("workers", 1)
    return ServerThread(ServeConfig(**overrides)).start()


def _prime(server, coord=WORKLOAD):
    """One cold analyze so later requests ride the warm plane; returns
    the build's wall-clock seconds."""
    import http.client

    connection = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=300
    )
    body = json.dumps(coord).encode()

    def build():
        connection.request(
            "POST", "/analyze", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 200, response.read()
        response.read()

    seconds = measure(build)
    connection.close()
    return seconds


def _load(server, path, payload, requests=300, concurrency=4):
    report = run_load(
        "127.0.0.1",
        server.port,
        path,
        json.dumps(payload).encode() if payload is not None else None,
        method="POST" if payload is not None else "GET",
        requests=requests,
        concurrency=concurrency,
        warmup=20,
    )
    assert report.errors == 0, report.status_counts
    assert report.digest  # byte-identical bodies across the run
    return report


def test_serve_smoke(tmp_path):
    """CI guard: warm /predict sustains the committed throughput floor."""
    server = _start_server(tmp_path)
    try:
        _prime(server)
        report = _load(
            server, "/predict",
            {**WORKLOAD, "overrides": {"L2D": 30}},
            requests=200, concurrency=2,
        )
        assert report.requests_per_second >= MIN_REQUESTS_PER_SECOND, (
            f"{report.requests_per_second:,.0f} req/s"
        )
    finally:
        server.stop()


def test_serve_load_report(tmp_path):
    """Per-endpoint load table + the cold/warm amortisation headline."""
    server = _start_server(tmp_path)
    try:
        cold_seconds = _prime(server)
        runs = [
            ("POST /predict (warm)", "/predict",
             {**WORKLOAD, "overrides": {"L2D": 30, "FP_MUL": 2}}),
            ("POST /analyze (warm)", "/analyze", {**WORKLOAD, "top": 5}),
            ("GET /healthz", "/healthz", None),
        ]
        rows = []
        warm_predict = None
        for label, path, payload in runs:
            report = _load(server, path, payload)
            if path == "/predict":
                warm_predict = report
            rows.append(
                [
                    label,
                    f"{report.requests_per_second:,.0f} req/s",
                    f"{report.percentile(0.50) * 1e3:.2f}ms",
                    f"{report.percentile(0.99) * 1e3:.2f}ms",
                    f"{report.requests}",
                ]
            )

        amortisation = cold_seconds / warm_predict.percentile(0.50)
        text = (
            "Serve daemon: closed-loop load (4 keep-alive connections, "
            f"gamess {WORKLOAD['macros']} macros)\n"
            + format_table(
                ["endpoint", "throughput", "p50", "p99", "requests"],
                rows,
            )
            + f"\n\ncold session build: {cold_seconds:.2f}s (once, "
            "cached on disk)"
            f"\nwarm predict p50: "
            f"{warm_predict.percentile(0.50) * 1e3:.2f}ms — "
            f"{amortisation:,.0f}x the cold build, amortised per request"
        )
        write_report("serve.txt", text)
        assert warm_predict.requests_per_second >= MIN_REQUESTS_PER_SECOND
    finally:
        server.stop()
