"""Figure 6 — example design space exploration scenarios.

(a) 416.gamess analogue: identify the major bottlenecks (the paper finds
    L1D, Fadd, Fmul), sweep 2500+ latency configurations from the single
    simulation, count the designs meeting the target CPI, and validate
    RpStacks vs CP1 vs FMT predictions on optimisation scenarios.

(b) 437.leslie3d analogue: the FMT failure case — FMT mislabels
    overlapped Fmul/L1D cycles, so its predictions degrade on designs
    optimising those events, while RpStacks (and here CP1) stay close.

(c) Exploration-style comparison: exhaustive simulation vs insight-driven
    simulation vs RpStacks — design points covered per unit time.
"""

import numpy as np

from conftest import get_session, write_report

from repro.common.events import EventType
from repro.dse.designspace import DesignSpace
from repro.dse.explorer import Explorer
from repro.dse.overhead import measure_overhead
from repro.dse.report import format_table
from repro.workloads.suite import make_workload

#: >2500 latency combinations around gamess's bottleneck events.
GAMESS_SPACE = {
    EventType.L1D: [1, 2, 3, 4],
    EventType.LD: [1, 2],
    EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
    EventType.FP_MUL: [1, 2, 3, 4, 5, 6],
    EventType.FP_DIV: [6, 24],
    EventType.L2D: [3, 6, 12],
    EventType.MEM_D: [66, 133],
}


def _prediction_rows(session, scenarios):
    rows = []
    worst = {"rpstacks": 0.0, "cp1": 0.0, "fmt": 0.0}
    for overrides in scenarios:
        latency = session.config.latency.with_overrides(overrides)
        simulated = session.machine.cycles(latency)
        row = [str({e.name: v for e, v in overrides.items()})]
        for name, predictor in session.predictors().items():
            error = (
                predictor.predict_cycles(latency) - simulated
            ) / simulated * 100
            worst[name] = max(worst[name], abs(error))
            row.append(f"{error:+.1f}%")
        rows.append(row)
    return rows, worst


def test_fig06a_gamess_exploration(benchmark):
    session = get_session("gamess")
    base = session.config.latency
    space = DesignSpace.from_mapping(GAMESS_SPACE, base=base)
    assert space.num_points >= 2500

    target = session.baseline_cpi * 0.8
    result = benchmark(
        Explorer(session.rpstacks).explore, space, target
    )

    bottlenecks = [n for n, _v in session.rpstacks.bottlenecks(base, top=3)]
    scenarios = (
        {EventType.L1D: 2},
        {EventType.FP_ADD: 3, EventType.FP_MUL: 3},
        {EventType.L1D: 2, EventType.FP_ADD: 2},
        {EventType.L1D: 1, EventType.LD: 1},
    )
    rows, worst = _prediction_rows(session, scenarios)
    report = (
        "Figure 6a: 416.gamess exploration scenario\n"
        f"bottlenecks identified: {bottlenecks}\n"
        f"design points swept: {result.num_points} "
        f"(single simulation); {result.num_meeting_target} meet "
        f"target CPI {target:.3f}\n\n"
        + format_table(
            ["scenario", "rpstacks", "cp1", "fmt"], rows
        )
    )
    write_report("fig06a_gamess.txt", report)

    # Paper's Fig 6a facts, reproduced in shape: the bottleneck triple is
    # {L1D, Fadd, Fmul}; >2500 configs are covered in one run; >200
    # designs meet the target; RpStacks stays accurate.
    assert set(bottlenecks) >= {"L1D", "Fadd"}
    assert result.num_meeting_target > 200
    assert worst["rpstacks"] < 12.0


def test_fig06b_leslie3d_fmt_failure(benchmark):
    session = get_session("leslie3d")
    base = session.config.latency

    scenarios = (
        {EventType.FP_MUL: 1},
        {EventType.FP_MUL: 1, EventType.L1D: 1},
        {EventType.FP_MUL: 2, EventType.L1D: 2},
        {EventType.L1D: 1, EventType.LD: 1},
    )

    def worst_errors():
        return _prediction_rows(session, scenarios)

    rows, worst = benchmark(worst_errors)
    report = (
        "Figure 6b: 437.leslie3d optimisation case\n"
        + format_table(["scenario", "rpstacks", "cp1", "fmt"], rows)
        + "\n\nworst absolute errors: "
        + ", ".join(f"{k}={v:.1f}%" for k, v in worst.items())
    )
    write_report("fig06b_leslie3d.txt", report)

    # Reproduced shape: FMT's mislabelled overlapped events make its
    # worst-case error exceed RpStacks' on these scenarios.
    assert worst["fmt"] > worst["rpstacks"]
    assert worst["rpstacks"] < 12.0


def test_fig06c_exploration_styles(benchmark):
    workload = make_workload("gamess", 300)
    profile = measure_overhead(workload, eval_points=32, reeval_points=1)

    def coverage_in(budget_seconds: float):
        """Design points evaluated per method within a time budget."""
        per_sim = profile.simulate_seconds
        exhaustive = int(budget_seconds / per_sim)
        # Insight-driven: an architect prunes ~80% of the points but
        # still simulates each survivor.
        insight = int(budget_seconds / per_sim / 0.2)
        setup = profile.rpstacks_method().setup_seconds
        if budget_seconds <= setup:
            rpstacks = 0
        else:
            rpstacks = int(
                (budget_seconds - setup) / profile.rpstacks_eval_seconds
            )
        return exhaustive, insight, rpstacks

    budget = 60.0
    exhaustive, insight, rpstacks = benchmark(coverage_in, budget)
    report = (
        "Figure 6c: exploration style comparison "
        f"(design points covered in {budget:.0f}s)\n"
        + format_table(
            ["style", "points covered"],
            [
                ["exhaustive simulation", exhaustive],
                ["insight-driven simulation (80% pruned)", insight],
                ["rpstacks (one simulation, then evaluation)", rpstacks],
            ],
        )
    )
    write_report("fig06c_styles.txt", report)
    assert rpstacks > insight > exhaustive
