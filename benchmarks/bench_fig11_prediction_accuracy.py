"""Figure 11 — prediction accuracy: RpStacks vs CP1 vs FMT.

For every suite workload, the top-two bottleneck events (from the
baseline CPI stack, as in the paper) have their latencies reduced
(a) to one half and (b) to 10-25%, alone and in combination; each method
predicts the resulting CPI and is scored against a ground-truth
re-simulation.  Reproduced shape: RpStacks stays accurate everywhere;
CP1 and FMT degrade, badly so under the aggressive reductions.
"""

import numpy as np

from conftest import get_session, write_report

from repro.common.events import EventType
from repro.dse.report import format_table
from repro.dse.validate import (
    bottleneck_reduction_scenarios,
    validate_predictors,
)
from repro.workloads.suite import suite_names


def _bottlenecks(session, count=2):
    ranked = sorted(
        session.cp1.cpi_stack().items(), key=lambda kv: -kv[1]
    )
    return [
        event
        for event, _value in ranked
        if event not in (EventType.BASE, EventType.BR_MISP)
    ][:count]


def _run_figure(fraction: float, filename: str, title: str):
    rows = []
    means: dict = {"rpstacks": [], "cp1": [], "fmt": []}
    for name in suite_names():
        session = get_session(name)
        scenarios = bottleneck_reduction_scenarios(
            session.config.latency, _bottlenecks(session), fraction
        )
        report = validate_predictors(
            session.machine, session.predictors(), scenarios
        )
        row = [name]
        for method in ("rpstacks", "cp1", "fmt"):
            mean = report.mean_abs_error(method)
            means[method].append(mean)
            row.append(f"{mean:.1f}%")
        rows.append(row)

    summary = {
        method: float(np.mean(values)) for method, values in means.items()
    }
    worst = {
        method: float(np.max(values)) for method, values in means.items()
    }
    text = (
        f"{title}\n"
        + format_table(
            ["application", "rpstacks", "cp1", "fmt"], rows
        )
        + "\n\nmean abs error: "
        + ", ".join(f"{k}={v:.2f}%" for k, v in summary.items())
        + "\nworst application: "
        + ", ".join(f"{k}={v:.2f}%" for k, v in worst.items())
    )
    write_report(filename, text)
    return summary, worst


def test_fig11a_halved_latencies(benchmark):
    summary, worst = benchmark.pedantic(
        _run_figure,
        args=(0.5, "fig11a_halved.txt", "Figure 11a: bottleneck latencies reduced to one half"),
        rounds=1,
        iterations=1,
    )
    # Gentle scenario: everything is reasonably accurate, RpStacks best
    # or tied.
    assert summary["rpstacks"] < 6.0
    assert summary["rpstacks"] <= summary["fmt"] + 0.5


def test_fig11b_aggressive_latencies(benchmark):
    summary, worst = benchmark.pedantic(
        _run_figure,
        args=(
            0.2,
            "fig11b_aggressive.txt",
            "Figure 11b: bottleneck latencies reduced to 10-25%",
        ),
        rounds=1,
        iterations=1,
    )
    # The paper's headline: under aggressive reductions RpStacks keeps
    # its accuracy (small mean error and no bad outlier application),
    # while the single-path and stall-accounting baselines degrade.
    assert summary["rpstacks"] < 8.0
    assert summary["rpstacks"] <= summary["cp1"] + 0.5
    assert worst["rpstacks"] < worst["cp1"]
    assert summary["rpstacks"] < summary["fmt"]
    assert worst["rpstacks"] < worst["fmt"]
