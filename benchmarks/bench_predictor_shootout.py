"""Extension — all predictors, one arena.

Beyond the paper's three-way comparison (Fig 11), this bench scores every
prediction approach the related-work section discusses, on the same
aggressive Fig 11b scenarios over the whole suite:

* rpstacks   — 1 simulation (this paper);
* cp1        — 1 simulation, single critical path;
* fmt        — 1 simulation, pipeline-stall accounting;
* interval   — 1 simulation, first-order mechanistic model;
* regression — 8 simulations, least-squares empirical model.

Reproduced shape: the trace-derived multi-path method dominates the
fixed-decomposition single-simulation methods; the mechanistic model is
blind to dependence chains; the empirical model needs a multi-simulation
budget to compete.
"""

import numpy as np

from conftest import get_session, write_report

from repro.baselines.interval import IntervalModelPredictor
from repro.baselines.regression import train_regression
from repro.common.events import EventType
from repro.dse.designspace import DesignSpace
from repro.dse.report import format_table
from repro.dse.validate import (
    bottleneck_reduction_scenarios,
    validate_predictors,
)
from repro.workloads.suite import suite_names

REGRESSION_BUDGET = 8


def _bottlenecks(session, count=2):
    ranked = sorted(
        session.cp1.cpi_stack().items(), key=lambda kv: -kv[1]
    )
    return [
        event
        for event, _value in ranked
        if event not in (EventType.BASE, EventType.BR_MISP)
    ][:count]


def _predictors(session):
    bottlenecks = _bottlenecks(session)
    base = session.config.latency
    axes = {
        event: sorted(
            {1, max(1, base[event] // 4), max(1, base[event] // 2),
             base[event]}
        )
        for event in bottlenecks
    }
    space = DesignSpace.from_mapping(axes, base=base)
    predictors = dict(session.predictors())
    predictors["interval"] = IntervalModelPredictor(
        session.baseline_result
    )
    predictors["regression"] = train_regression(
        session.machine, space, REGRESSION_BUDGET, seed=11
    )
    return predictors


def test_predictor_shootout(benchmark):
    methods = ("rpstacks", "cp1", "fmt", "interval", "regression")
    rows = []
    means = {method: [] for method in methods}
    for name in suite_names():
        session = get_session(name)
        predictors = _predictors(session)
        scenarios = bottleneck_reduction_scenarios(
            session.config.latency, _bottlenecks(session), 0.2
        )
        report = validate_predictors(
            session.machine, predictors, scenarios
        )
        row = [name]
        for method in methods:
            error = report.mean_abs_error(method)
            means[method].append(error)
            row.append(f"{error:.1f}%")
        rows.append(row)

    def evaluate_all_once():
        session = get_session("gamess")
        predictors = _predictors(session)
        probe = session.config.latency.with_overrides({EventType.L1D: 2})
        return [p.predict_cycles(probe) for p in predictors.values()]

    benchmark(evaluate_all_once)

    summary = {m: float(np.mean(v)) for m, v in means.items()}
    text = (
        "Predictor shootout: mean |error| on Fig 11b scenarios\n"
        "(single-simulation methods vs an 8-simulation regression)\n"
        + format_table(["application"] + list(methods), rows)
        + "\n\nsuite means: "
        + ", ".join(f"{m}={v:.2f}%" for m, v in summary.items())
    )
    write_report("predictor_shootout.txt", text)

    # Shape assertions.
    assert summary["rpstacks"] < summary["fmt"]
    assert summary["rpstacks"] < summary["interval"]
    assert summary["rpstacks"] <= summary["cp1"] + 0.5
    # The 8-simulation regression is competitive — that is its honest
    # story — but costs 8x the simulations of every other column.
    assert summary["regression"] < summary["fmt"]
