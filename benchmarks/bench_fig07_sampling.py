"""Figure 7a — the sampling optimisation: per-SimPoint analysis.

The paper cuts analysis cost by generating RpStacks per weighted
SimPoint instead of over the whole stream (and notes the simpoints can
run concurrently).  This bench reproduces the trade on a long phased
workload: weighted per-simpoint analysis vs full-stream analysis,
comparing wall-clock cost and prediction accuracy against a full-stream
re-simulation ground truth.
"""

import time

import numpy as np

from conftest import write_report

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.core.generator import generate_rpstacks
from repro.dse.report import format_table
from repro.graphmodel.builder import build_graph
from repro.sampling.simpoint import (
    select_simpoints,
    simpoint_machine,
    weighted_cpi,
)
from repro.simulator.machine import Machine
from repro.workloads.generator import WorkloadSpec
from repro.workloads.phased import make_phased_workload

PHASES = [
    (
        WorkloadSpec(
            name="fp", p_fp_add=0.25, p_fp_mul=0.2, p_load=0.2,
            working_set_bytes=8 * 1024, code_footprint_bytes=256,
        ),
        250,
    ),
    (
        WorkloadSpec(
            name="mem", p_load=0.4, pointer_chase_fraction=0.5,
            working_set_bytes=8 << 20, code_footprint_bytes=256,
        ),
        250,
    ),
    (
        WorkloadSpec(
            name="int", p_load=0.2, p_branch=0.15,
            working_set_bytes=32 * 1024, code_footprint_bytes=256,
        ),
        250,
    ),
]

PROBES = (
    {},
    {EventType.FP_ADD: 2, EventType.FP_MUL: 2},
    {EventType.MEM_D: 66},
    {EventType.L1D: 2, EventType.MEM_D: 66},
)


def test_fig07a_simpoint_sampling(benchmark):
    # One pass of each phase: repeating identical blocks would give the
    # second occurrence warm caches in situ (cold/warm asymmetry), which
    # breaks SimPoint's same-BBV-same-behaviour premise at this scale.
    workload = make_phased_workload(PHASES, name="phased3", seed=3)
    config = baseline_config()
    full_machine = Machine(workload, config)

    # Full-stream analysis.
    start = time.perf_counter()
    full_result = full_machine.simulate()
    full_model = generate_rpstacks(
        build_graph(full_result), config.latency
    )
    full_seconds = time.perf_counter() - start

    # SimPoint analysis: select, then analyse each interval.
    start = time.perf_counter()
    simpoints = select_simpoints(workload, interval_macros=75, max_k=5)
    analyses = []
    for sp in simpoints:
        machine = simpoint_machine(workload, sp, config=config)
        result = machine.simulate()
        model = generate_rpstacks(build_graph(result), config.latency)
        analyses.append((machine, model))
    simpoint_seconds = time.perf_counter() - start
    coverage = sum(len(sp.workload) for sp in simpoints) / len(workload)

    benchmark.pedantic(
        select_simpoints, args=(workload,),
        kwargs={"interval_macros": 75, "max_k": 5},
        rounds=1, iterations=1,
    )

    rows = []
    errors = {"full": [], "simpoint": []}
    for overrides in PROBES:
        latency = config.latency.with_overrides(overrides)
        truth = full_machine.cycles(latency) / len(workload)
        full_pred = full_model.predict_cpi(latency)
        sp_pred = weighted_cpi(
            [model.predict_cpi(latency) for _machine, model in analyses],
            simpoints,
        )
        errors["full"].append(abs(full_pred - truth) / truth * 100)
        errors["simpoint"].append(abs(sp_pred - truth) / truth * 100)
        rows.append(
            [
                str({e.name: v for e, v in overrides.items()} or "baseline"),
                f"{truth:.3f}",
                f"{full_pred:.3f}",
                f"{sp_pred:.3f}",
            ]
        )

    text = (
        "Figure 7a: SimPoint sampling vs full-stream analysis\n"
        f"stream: {len(workload)} uops, {len(simpoints)} simpoints "
        f"covering {coverage:.0%} of it\n"
        f"analysis wall time: full {full_seconds:.2f}s, "
        f"simpoint {simpoint_seconds:.2f}s "
        f"(serial; the simpoints are independent and parallelise)\n"
        + format_table(
            ["design point", "sim CPI", "full-stream", "simpoint"], rows
        )
        + "\nmean |error|: full "
        f"{np.mean(errors['full']):.2f}%, simpoint "
        f"{np.mean(errors['simpoint']):.2f}%"
    )
    write_report("fig07a_sampling.txt", text)

    # The sampling claims: far less of the stream analysed, accuracy in
    # the same band as full-stream analysis.
    assert coverage < 0.75
    assert np.mean(errors["simpoint"]) < np.mean(errors["full"]) + 5.0
    assert np.mean(errors["simpoint"]) < 12.0
