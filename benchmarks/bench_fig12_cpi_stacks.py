"""Figure 12 — bottlenecks and baseline CPIs of the applications.

Regenerates the per-application baseline CPI and its stall-event
decomposition (the stacked bars of the figure), taken from the RpStacks
representative stack of the baseline configuration.  Reproduced shape:
memory-bound analogues (mcf, milc, libquantum, lbm) have the largest
CPIs dominated by MemD; FP analogues are dominated by Fadd/Fmul/L1D;
integer analogues sit lowest with branch/I-cache components.
"""

from conftest import get_session, write_report

from repro.common.events import EventType, event_label
from repro.dse.report import format_table
from repro.workloads.suite import SPEC_LABELS, suite_names

#: Events grouped for display, mirroring the figure's legend.
MEMORY_EVENTS = (
    EventType.MEM_D,
    EventType.L2D,
    EventType.DTLB,
    EventType.L1D,
)


def test_fig12_baseline_cpi_stacks(benchmark):
    rows = []
    cpis = {}
    memory_shares = {}
    for name in suite_names():
        session = get_session(name)
        base = session.config.latency
        stack = session.rpstacks.representative_stack(base)
        penalties = stack.penalties(base)
        num_uops = len(session.workload)
        total = sum(penalties.values()) / num_uops
        top = sorted(penalties.items(), key=lambda kv: -kv[1])[:4]
        cpis[name] = session.baseline_cpi
        memory_shares[name] = (
            sum(penalties.get(e, 0.0) for e in MEMORY_EVENTS)
            / max(1e-9, sum(penalties.values()))
        )
        rows.append(
            [
                SPEC_LABELS[name],
                f"{session.baseline_cpi:.3f}",
                f"{total:.3f}",
                ", ".join(
                    f"{event_label(e)}={v / num_uops:.2f}" for e, v in top
                ),
            ]
        )

    # Benchmark the figure's underlying operation: extracting the
    # representative stack for one workload.
    session = get_session("gamess")
    benchmark(
        session.rpstacks.representative_stack, session.config.latency
    )

    text = (
        "Figure 12: bottlenecks and baseline CPIs of the applications\n"
        + format_table(
            ["application", "sim CPI", "stack CPI", "top components"],
            rows,
        )
    )
    write_report("fig12_cpi_stacks.txt", text)

    # Emit the actual stacked-bar figure as well.
    from repro.dse.svg import render_stacked_bars

    bars = []
    for name in suite_names():
        session = get_session(name)
        base = session.config.latency
        stack = session.rpstacks.representative_stack(base)
        num_uops = len(session.workload)
        bars.append(
            (
                SPEC_LABELS[name].split(".")[1],
                {
                    event_label(event): value / num_uops
                    for event, value in stack.penalties(base).items()
                },
            )
        )
    write_report(
        "fig12_cpi_stacks.svg",
        render_stacked_bars(
            bars, "Figure 12: baseline CPI stacks", unit="CPI"
        ),
    )

    # Shape checks.
    for memory_bound in ("mcf", "milc", "libquantum", "lbm"):
        assert memory_shares[memory_bound] > 0.5, memory_bound
        assert cpis[memory_bound] > cpis["namd"], memory_bound
    assert cpis["mcf"] == max(cpis.values())
    for compute_bound in ("gamess", "namd", "perlbench"):
        assert memory_shares[compute_bound] < 0.6, compute_bound
