"""Shared fixtures and reporting helpers for the reproduction benches.

Every ``bench_figXX`` module regenerates one table/figure of the paper:
it computes the figure's data, writes a formatted text report to
``benchmarks/results/``, attaches headline numbers to the
pytest-benchmark ``extra_info`` (so they land in the benchmark JSON), and
times the operation the figure is *about*.

Scale note: workload lengths are scaled to Python-simulator speeds
(hundreds of macro-ops instead of 1M-instruction SimPoints).  All
comparisons are self-consistent ratios, so the figures' shapes — who
wins, where curves cross — are what is being reproduced, not absolute
numbers (see DESIGN.md §2 and EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict

import pytest

from repro.dse.pipeline import AnalysisSession, analyze
from repro.obs.bench import measure
from repro.runtime.cache import ArtifactCache
from repro.workloads.suite import make_workload, suite_names

#: Macro-ops per workload for accuracy benches.
BENCH_MACROS = 300

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: On-disk artifact cache shared across bench runs, so re-running one
#: figure's bench reuses every baseline analysis computed by earlier
#: runs instead of re-simulating it.  Override the location (or point
#: several checkouts at one store) via REPRO_BENCH_CACHE; set it to an
#: empty string to disable caching.
_CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE",
    str(pathlib.Path(__file__).parent / ".artifact-cache"),
)
ARTIFACT_CACHE = ArtifactCache(_CACHE_DIR) if _CACHE_DIR else None

_SESSION_CACHE: Dict[str, AnalysisSession] = {}


def get_session(name: str, macros: int = BENCH_MACROS) -> AnalysisSession:
    """Analysis session for a suite workload, cached across benches.

    Two cache layers: an in-process memo for repeated use inside one
    pytest invocation, backed by the content-addressed artifact cache
    for reuse across invocations.
    """
    key = f"{name}:{macros}"
    if key not in _SESSION_CACHE:
        _SESSION_CACHE[key] = analyze(
            make_workload(name, macros), cache=ARTIFACT_CACHE
        )
    return _SESSION_CACHE[key]


def timed(fn):
    """``(result, seconds)`` of one call of *fn*.

    The benches' shared timing primitive: it defers to
    :func:`repro.obs.bench.measure` (the harness measurement protocol —
    ``repro.obs.clock`` seam, GC paused across the body, collection
    between calls), so ad-hoc figure benches and the governed
    ``repro bench`` scenarios measure the same way.
    """
    box = {}

    def body():
        box["result"] = fn()

    seconds = measure(body)
    return box["result"], seconds


def best_of(fn, reps: int):
    """``(last result, fastest seconds)`` over *reps* timed calls.

    Timing rep-by-rep and keeping the minimum makes ratios robust
    against machine-load noise a single sample is exposed to.
    """
    best = None
    result = None
    for _ in range(reps):
        result, elapsed = timed(fn)
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def write_report(filename: str, text: str) -> pathlib.Path:
    """Persist a figure's text report under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_suite_names():
    return suite_names()
