"""Extension — structure-class study with per-structure RpStacks.

The paper's Fig 6c workflow at core-class granularity: little / baseline
/ big cores (presets) each get one simulation and one RpStacks model,
and every model covers the same latency space.  The bench asserts the
pieces a combined study relies on: the cores rank, each structure's
model stays accurate *for its own structure*, and the latency sweep
ranks designs consistently with re-simulation.
"""

from conftest import write_report

from repro.common.events import EventType
from repro.common.presets import preset, preset_names
from repro.dse.designspace import DesignSpace
from repro.dse.pipeline import analyze
from repro.dse.report import format_table
from repro.workloads.generator import WorkloadSpec, generate

#: ILP + alternating branches: exercises widths, windows and predictors.
WORKLOAD_SPEC = WorkloadSpec(
    name="ranker", num_macro_ops=300, p_load=0.2, p_store=0.08,
    p_fp_add=0.15, p_branch=0.15, dep_distance_mean=18.0,
    alternating_branch_fraction=0.3, hard_branch_fraction=0.0,
    working_set_bytes=16 * 1024, code_footprint_bytes=512,
)

SPACE = {
    EventType.L1D: [1, 2, 4],
    EventType.FP_ADD: [1, 3, 6],
    EventType.LD: [1, 2],
}


def test_structure_presets_study(benchmark):
    workload = generate(WORKLOAD_SPEC, seed=5)

    sessions = {}
    for name in preset_names():
        sessions[name] = analyze(workload, config=preset(name))

    def sweep_all():
        space = DesignSpace.from_mapping(SPACE)
        return {
            name: session.rpstacks.predict_many(space.points())
            for name, session in sessions.items()
        }

    benchmark(sweep_all)

    space = DesignSpace.from_mapping(SPACE)
    rows = []
    accuracy = {}
    for name, session in sessions.items():
        base = session.config.latency
        probe = base.with_overrides(
            {EventType.L1D: 2, EventType.FP_ADD: 3}
        )
        predicted = session.rpstacks.predict_cpi(probe)
        simulated = session.simulate(probe).cpi
        error = (predicted - simulated) / simulated * 100
        accuracy[name] = abs(error)
        rows.append(
            [
                name,
                f"{session.baseline_cpi:.3f}",
                f"{predicted:.3f}",
                f"{simulated:.3f}",
                f"{error:+.2f}%",
            ]
        )
    text = (
        "Structure-class study: per-preset baselines and latency-point "
        "accuracy\n"
        + format_table(
            [
                "preset", "baseline CPI", "predicted CPI (probe)",
                "simulated CPI (probe)", "error",
            ],
            rows,
        )
    )
    write_report("structure_presets.txt", text)

    cpis = {
        name: session.baseline_cpi for name, session in sessions.items()
    }
    # The cores rank, and every structure's own model stays accurate.
    assert cpis["big"] <= cpis["baseline"] < cpis["little"]
    assert all(err < 10.0 for err in accuracy.values()), accuracy
