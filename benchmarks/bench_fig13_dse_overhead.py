"""Figure 13 — design space exploration overhead.

Measures, per workload, every phase of the RpStacks pipeline and of
per-point re-simulation on this machine, then regenerates the figure's
series: normalised exploration time against the number of latency design
points, the crossover point where RpStacks overtakes the simulator
(paper: 38 points on average), and the speed-up at 1000 points (paper:
26x on average — ours is far larger because per-point evaluation is a
tiny matrix product while our Python simulator is comparatively slow;
the *shape* is what reproduces).
"""

import numpy as np

from conftest import BENCH_MACROS, write_report

from repro.dse.overhead import exploration_curves, measure_overhead
from repro.dse.report import format_table
from repro.workloads.suite import make_workload, suite_names

POINT_COUNTS = (1, 10, 38, 100, 1000)
WORKLOADS = ("perlbench", "gamess", "mcf", "milc", "bzip2", "leslie3d")


def test_fig13_exploration_overhead(benchmark):
    profiles = {}
    for name in WORKLOADS:
        workload = make_workload(name, BENCH_MACROS)
        profiles[name] = measure_overhead(
            workload, eval_points=64, reeval_points=1
        )

    # The benchmarked operation is the per-design-point evaluation —
    # the quantity whose smallness makes the RpStacks curve flat.
    probe = profiles["gamess"]
    from repro.common.config import LatencyConfig

    model_eval_profile = probe.rpstacks_method()
    benchmark(model_eval_profile.exploration_seconds, 1000)

    rows = []
    crossovers = []
    speedups = []
    for name, profile in profiles.items():
        curves = exploration_curves(profile, design_points=POINT_COUNTS)
        crossover = profile.crossover_points()
        speedup = profile.speedup(1000)
        crossovers.append(crossover)
        speedups.append(speedup)
        rows.append(
            [
                name,
                f"{profile.simulate_seconds:.2f}s",
                f"{profile.rpstacks_method().setup_seconds:.2f}s",
                f"{profile.rpstacks_eval_seconds * 1e6:.0f}us",
                f"{crossover:.1f}",
                f"{speedup:.0f}x",
            ]
        )

    geo_crossover = float(np.exp(np.mean(np.log(crossovers))))
    geo_speedup = float(np.exp(np.mean(np.log(speedups))))
    text = (
        "Figure 13: design space exploration overhead\n"
        + format_table(
            [
                "application",
                "sim/point",
                "rpstacks setup",
                "rpstacks eval/point",
                "crossover (points)",
                "speedup @1000",
            ],
            rows,
        )
        + f"\n\ngeomean crossover: {geo_crossover:.1f} design points "
        "(paper: 38)\n"
        f"geomean speedup at 1000 points: {geo_speedup:.0f}x (paper: 26x; "
        "ours is larger because evaluation is a tiny matrix product while "
        "the Python simulator is comparatively slow)"
    )
    write_report("fig13_dse_overhead.txt", text)

    # Emit the exploration-time figure (log-log, as the paper draws it).
    from repro.dse.svg import render_line_chart

    gamess_curves = exploration_curves(
        profiles["gamess"], design_points=POINT_COUNTS
    )
    write_report(
        "fig13_dse_overhead.svg",
        render_line_chart(
            list(POINT_COUNTS),
            gamess_curves,
            "Figure 13: exploration time vs design points (gamess)",
            x_label="design points",
            y_label="seconds",
            log_x=True,
            log_y=True,
        ),
    )

    # Reproduced shape: a small, finite crossover (one-off analysis pays
    # for itself within tens of points) and a large speed-up at 1000.
    assert geo_crossover < 38
    assert geo_speedup > 26
