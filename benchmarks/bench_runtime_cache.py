"""Runtime subsystem — artifact-cache and parallel-runner throughput.

Quantifies the two acceptance claims of the runtime subsystem:

* a warm-cache ``analyze()`` of a suite workload is >= 10x faster than
  the cold, from-scratch pipeline (content-addressed artifact reuse);
* fanning the suite across worker processes returns results identical
  to the serial run (correctness is asserted bit-exactly in
  ``tests/runtime/test_differential.py``; here we record wall-clocks).

Unlike the figure benches this reproduces no paper figure — it measures
the ROADMAP's "fast as the hardware allows" engineering claim, the same
front-end-caching pattern LightningSimV2 applies to RTL simulation.
"""

from conftest import BENCH_MACROS, timed, write_report

from repro.dse.pipeline import analyze
from repro.dse.report import format_table
from repro.runtime.cache import ArtifactCache
from repro.runtime.runner import run_suite
from repro.workloads.suite import make_workload, suite_names

#: Workloads timed individually for the cold/warm comparison.
PROBE_WORKLOADS = ("gamess", "mcf", "libquantum")


def test_warm_cache_speedup(benchmark, tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    rows = []
    speedups = []
    for name in PROBE_WORKLOADS:
        workload = make_workload(name, BENCH_MACROS)
        _, cold = timed(lambda: analyze(workload, cache=cache))
        # Best-of-3: a cache hit is ~20 ms, where a single sample is at
        # the mercy of scheduler and GC noise on a loaded box.
        warm = float("inf")
        for _ in range(3):
            _, sample = timed(lambda: analyze(workload, cache=cache))
            warm = min(warm, sample)
        speedups.append(cold / warm)
        rows.append(
            [name, f"{cold * 1e3:.1f} ms", f"{warm * 1e3:.1f} ms",
             f"{cold / warm:.1f}x"]
        )

    warm_workload = make_workload(PROBE_WORKLOADS[0], BENCH_MACROS)
    result = benchmark(lambda: analyze(warm_workload, cache=cache))
    assert result.baseline_result.cycles > 0

    report = (
        "Runtime: warm-cache analyze() vs cold pipeline "
        f"({BENCH_MACROS} macro-ops)\n"
        + format_table(["workload", "cold", "warm (cache hit)", "speedup"],
                       rows)
        + f"\nminimum speedup: {min(speedups):.1f}x (acceptance floor 10x)"
    )
    write_report("runtime_cache.txt", report)
    assert min(speedups) >= 10.0


def test_parallel_suite_wall_clock(benchmark, tmp_path):
    macros = 120  # full 12-workload suite, twice — keep each run modest
    serial = run_suite(macros=macros, jobs=1)
    parallel = run_suite(macros=macros, jobs=4)
    assert not serial.failed and not parallel.failed
    for mine, theirs in zip(serial, parallel):
        assert mine.baseline_cycles == theirs.baseline_cycles, mine.name

    cache_dir = tmp_path / "cache"
    run_suite(macros=macros, jobs=4, cache=cache_dir)
    cached = benchmark(lambda: run_suite(macros=macros, jobs=1,
                                         cache=cache_dir))
    assert all(outcome.cache_hit for outcome in cached)

    rows = [
        ["serial (jobs=1)", f"{serial.wall_seconds:.2f} s", "from scratch"],
        ["parallel (jobs=4)", f"{parallel.wall_seconds:.2f} s",
         "identical results, asserted per-workload"],
        ["warm cache (jobs=1)", f"{cached.wall_seconds:.2f} s",
         "all 12 workloads served from the artifact cache"],
    ]
    report = (
        f"Runtime: suite wall-clock, {len(serial)} workloads x "
        f"{macros} macro-ops\n"
        + format_table(["mode", "wall-clock", "notes"], rows)
    )
    write_report("runtime_suite.txt", report)
    assert cached.wall_seconds < serial.wall_seconds
