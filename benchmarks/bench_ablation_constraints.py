"""Ablation — what each added Table I constraint buys (Section IV-C).

The paper claims its dependence-graph model improves on prior
RISC-oriented models through a richer constraint set (the ``+`` rows of
Table I).  This bench quantifies that on our substrate: each constraint
family is disabled in turn and the graph-model error against the
simulator is re-measured over baseline and optimised design points.
Expected shape: the full model is the most accurate; dropping the
address path or the load/store ordering hurts the most on memory-heavy
workloads.
"""

import numpy as np

from conftest import get_session, write_report

from repro.common.events import EventType
from repro.dse.report import format_table
from repro.graphmodel.builder import BuilderOptions, build_graph

WORKLOADS = ("gamess", "mcf", "leslie3d", "bzip2")

ABLATIONS = (
    ("full model", BuilderOptions()),
    ("no issue dependency", BuilderOptions(issue_dependency=False)),
    ("no address path", BuilderOptions(address_path=False)),
    ("no load/store ordering", BuilderOptions(load_store_ordering=False)),
    ("no line sharing", BuilderOptions(cache_line_sharing=False)),
    ("no macro-op commit", BuilderOptions(uop_commit_dependency=False)),
    ("no fetch buffer", BuilderOptions(fetch_buffer_edge=False)),
)

SCENARIOS = (
    {},
    {EventType.L1D: 1},
    {EventType.FP_ADD: 1, EventType.FP_MUL: 1},
    {EventType.MEM_D: 33},
)


def _mean_error(options: BuilderOptions) -> float:
    errors = []
    for name in WORKLOADS:
        session = get_session(name)
        graph = build_graph(session.baseline_result, options)
        base = session.config.latency
        for overrides in SCENARIOS:
            latency = base.with_overrides(overrides)
            simulated = session.machine.cycles(latency)
            predicted = graph.longest_path_length(latency)
            errors.append(abs(predicted - simulated) / simulated * 100)
    return float(np.mean(errors))


def test_ablation_constraint_value(benchmark):
    full_error = benchmark.pedantic(
        _mean_error, args=(BuilderOptions(),), rounds=1, iterations=1
    )
    rows = [["full model", f"{full_error:.2f}%", "-"]]
    results = {"full model": full_error}
    for label, options in ABLATIONS[1:]:
        error = _mean_error(options)
        results[label] = error
        rows.append(
            [label, f"{error:.2f}%", f"{error - full_error:+.2f}%"]
        )

    text = (
        "Ablation: graph-model error vs simulator with Table I "
        "constraint families disabled\n"
        "(mean |error| over "
        + ", ".join(WORKLOADS)
        + " x baseline + 3 optimisation scenarios)\n"
        + format_table(["model variant", "mean error", "delta"], rows)
    )
    write_report("ablation_constraints.txt", text)

    # The full model is the most accurate configuration, and the
    # memory-path constraints carry the most weight.
    assert full_error == min(results.values())
    assert results["no address path"] > full_error + 1.0
    assert results["no load/store ordering"] > full_error + 1.0
