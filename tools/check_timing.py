#!/usr/bin/env python3
"""CI lint: no bare clock reads outside ``repro.obs.clock``.

The observability layer (``repro.obs``) is the repository's single seam
for reading clocks — spans, metrics and ad-hoc stage accounting all go
through :mod:`repro.obs.clock`.  A new ``time.perf_counter()`` sprinkled
into a pipeline stage silently re-creates the scattered-timing problem
this layer exists to end, so the build fails on any bare
``time.perf_counter`` / ``time.time`` / ``time.monotonic`` (and their
``_ns`` variants) call under ``src/`` or ``benchmarks/`` except in the
clock module itself and the two legacy figure benches that measure
wall-clock of external-style runs (committed headline numbers go
through the ``repro bench`` harness, which times via the seam).

Run from anywhere: ``python tools/check_timing.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys

FORBIDDEN = re.compile(
    r"\btime\.(perf_counter|perf_counter_ns|time|time_ns|monotonic|"
    r"monotonic_ns)\s*\("
)

#: Directories swept for bare clock reads, relative to the repo root.
SCANNED_DIRS = ("src", "benchmarks")

#: The only files allowed to touch the stdlib clocks directly: the seam
#: itself, plus the two legacy figure benches whose *subject* is the
#: wall-clock of external-style runs (they predate the harness and
#: measure comparison loops, not committed headline numbers).
ALLOWED = frozenset(
    {
        "src/repro/obs/clock.py",
        "benchmarks/bench_fig07_sampling.py",
        "benchmarks/bench_eval_scaling.py",
    }
)


def find_violations(root: pathlib.Path) -> list:
    violations = []
    for scanned in SCANNED_DIRS:
        base = root / scanned
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in ALLOWED:
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if FORBIDDEN.search(line):
                    violations.append(f"{rel}:{lineno}: {line.strip()}")
    return violations


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    violations = find_violations(root)
    if violations:
        print(
            "bare clock reads outside repro.obs.clock — route timing "
            "through repro.obs.clock.perf_seconds()/wall_iso() instead:"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    checked = sum(
        1
        for scanned in SCANNED_DIRS
        for _ in (root / scanned).rglob("*.py")
    )
    print(f"timing lint ok ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
