"""Live-daemon smoke drive for the CI ``serve-smoke`` job.

Starts ``repro serve`` as a real subprocess, drives one round-trip
through each endpoint family (health, warm analysis, prediction, job
lifecycle, metrics), then proves the graceful-drain contract: SIGTERM
while a request is in flight lets that request complete and the daemon
exit 0.

Run from the repo root: ``PYTHONPATH=src python tools/serve_smoke.py``.
Exits non-zero (with the failing step named) on any violation.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
MACROS = int(os.environ.get("SERVE_SMOKE_MACROS", "200"))


def request(port, method, path, payload=None, timeout=120):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {} if body is None else {"Content-Type": "application/json"}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def check(label, condition, detail=""):
    if not condition:
        print(f"FAIL {label}: {detail}", file=sys.stderr)
        sys.exit(1)
    print(f"ok   {label}")


def main():
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--cache-dir", os.path.join(tmp, "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            banner = proc.stderr.readline().strip()
            match = re.search(r":(\d+)$", banner)
            check("daemon bound", match, f"no port in banner {banner!r}")
            port = int(match.group(1))

            status, health = request(port, "GET", "/healthz")
            check("healthz", status == 200 and health["status"] == "ok",
                  (status, health))

            coord = {"workload": "gamess", "macros": MACROS}
            status, analysis = request(port, "POST", "/analyze", coord)
            check("cold analyze",
                  status == 200 and analysis["baseline_cpi"] > 0,
                  (status, analysis))

            status, prediction = request(
                port, "POST", "/predict",
                {**coord, "overrides": {"L2D": 30, "FP_MUL": 2}},
            )
            check("warm predict",
                  status == 200 and prediction["predicted_cpi"] > 0,
                  (status, prediction))

            status, submitted = request(
                port, "POST", "/jobs",
                {**coord, "axes": {"L1D": [1, 2], "FP_ADD": [1, 3, 6]},
                 "chunk_size": 4},
            )
            check("job submit", status == 202 and submitted["job_id"],
                  (status, submitted))
            job_id = submitted["job_id"]
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                status, polled = request(port, "GET", f"/jobs/{job_id}")
                if polled["state"] in ("done", "failed"):
                    break
                time.sleep(0.1)
            check("job done", polled["state"] == "done", polled)
            status, front = request(port, "GET", f"/jobs/{job_id}/front")
            check("job front",
                  status == 200 and len(front["pareto_front"]) >= 1,
                  (status, front))

            status, metrics = request(port, "GET", "/metrics")
            counters = metrics["metrics"]["counters"]
            check("metrics counters",
                  status == 200
                  and counters.get("serve.requests", 0) >= 6
                  and counters.get("serve.session_builds", 0) == 1,
                  (status, counters))

            # Graceful drain: SIGTERM with a request in flight.
            results = {}

            def inflight():
                results["slow"] = request(
                    port, "POST", "/analyze",
                    {"workload": "mcf", "macros": MACROS * 10},
                )

            thread = threading.Thread(target=inflight, daemon=True)
            thread.start()
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=300)
            returncode = proc.wait(timeout=120)
            check("drain exit 0", returncode == 0, returncode)
            status, body = results.get("slow", (None, None))
            check("in-flight request completed during drain",
                  status == 200 and body["baseline_cpi"] > 0,
                  (status, body))
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("serve smoke: all checks passed")


if __name__ == "__main__":
    main()
