"""Phased-workload composition tests."""

import pytest

from repro.isa.uop import validate_stream
from repro.sampling.simpoint import select_simpoints
from repro.workloads.generator import WorkloadSpec
from repro.workloads.phased import (
    CODE_REGION_BYTES,
    DATA_REGION_BYTES,
    make_phased_workload,
)

FP_PHASE = WorkloadSpec(
    name="fp", p_fp_add=0.3, p_fp_mul=0.2, p_load=0.2,
    working_set_bytes=8 * 1024, code_footprint_bytes=256,
)
MEM_PHASE = WorkloadSpec(
    name="mem", p_load=0.4, pointer_chase_fraction=0.5,
    working_set_bytes=8 << 20, code_footprint_bytes=256,
)


@pytest.fixture(scope="module")
def two_phase():
    return make_phased_workload(
        [(FP_PHASE, 200), (MEM_PHASE, 200)], seed=1
    )


def test_stream_is_valid(two_phase):
    validate_stream(two_phase.uops)


def test_macro_count_is_sum(two_phase):
    assert two_phase.num_macro_ops == 400


def test_phases_use_disjoint_code_regions(two_phase):
    first_half_pcs = {u.pc for u in two_phase if u.macro_id < 200}
    second_half_pcs = {u.pc for u in two_phase if u.macro_id >= 200}
    assert max(first_half_pcs) < CODE_REGION_BYTES
    assert min(second_half_pcs) >= CODE_REGION_BYTES


def test_phases_use_disjoint_data_regions(two_phase):
    first = [
        u.mem_addr
        for u in two_phase
        if u.mem_addr is not None and u.macro_id < 200
    ]
    second = [
        u.mem_addr
        for u in two_phase
        if u.mem_addr is not None and u.macro_id >= 200
    ]
    assert max(first) < min(second)
    assert min(second) - max(first) >= DATA_REGION_BYTES / 2


def test_params_declare_max_footprints(two_phase):
    params = dict(two_phase.params)
    assert params["working_set_bytes"] == 8 << 20
    assert params["num_phases"] == 2


def test_empty_phase_list_rejected():
    with pytest.raises(ValueError):
        make_phased_workload([])


def test_simpoint_distinguishes_the_phases(two_phase):
    simpoints = select_simpoints(two_phase, interval_macros=50, max_k=4)
    # Representatives from both halves of the stream (8 intervals: the
    # first 4 are the FP phase, the last 4 the memory phase).
    halves = {sp.interval_index < 4 for sp in simpoints}
    assert halves == {True, False}
