"""SPEC-analogue suite tests: coverage and per-workload character."""

import pytest

from repro.workloads.suite import (
    SPEC_LABELS,
    make_suite,
    make_workload,
    suite_names,
    suite_spec,
)


def test_suite_has_twelve_analogues():
    assert len(suite_names()) == 12


def test_every_analogue_has_a_spec_label():
    for name in suite_names():
        assert name in SPEC_LABELS
        assert SPEC_LABELS[name].split(".")[1] == name


def test_unknown_name_rejected():
    with pytest.raises(KeyError, match="unknown workload"):
        suite_spec("doom3")


def test_make_workload_respects_length():
    workload = make_workload("gamess", 150)
    assert workload.num_macro_ops == 150


def test_make_suite_default_builds_all(monkeypatch):
    workloads = make_suite(num_macro_ops=50)
    assert [w.name for w in workloads] == list(suite_names())


def test_make_suite_subset():
    workloads = make_suite(["mcf", "lbm"], num_macro_ops=50)
    assert [w.name for w in workloads] == ["mcf", "lbm"]


def test_fp_analogues_emit_fp_ops():
    for name in ("gamess", "milc", "leslie3d", "namd", "lbm"):
        workload = make_workload(name, 200)
        fp_ops = sum(
            1 for u in workload if u.opclass.name.startswith("FP_")
        )
        assert fp_ops > 0.15 * len(workload), name


def test_integer_analogues_emit_no_fp():
    for name in ("perlbench", "bzip2", "gcc", "mcf", "libquantum"):
        workload = make_workload(name, 200)
        assert not any(
            u.opclass.name.startswith("FP_") for u in workload
        ), name


def test_memory_bound_analogues_have_large_footprints():
    for name in ("mcf", "milc", "libquantum", "lbm"):
        assert suite_spec(name).working_set_bytes > 4 * 1024 * 1024


def test_cache_resident_analogues_fit_l1():
    for name in ("gamess", "leslie3d", "namd"):
        assert suite_spec(name).working_set_bytes <= 48 * 1024


def test_pointer_chasers():
    assert suite_spec("mcf").pointer_chase_fraction > 0
    assert suite_spec("omnetpp").pointer_chase_fraction > 0
    assert suite_spec("lbm").pointer_chase_fraction == 0


def test_gcc_has_large_code_footprint():
    assert suite_spec("gcc").code_footprint_bytes > 48 * 1024


def test_workloads_are_deterministic_per_seed():
    a = make_workload("soplex", 100, seed=3)
    b = make_workload("soplex", 100, seed=3)
    assert all(ua == ub for ua, ub in zip(a, b))
