"""Workload characterisation tests."""

import pytest

from repro.isa.uop import OpClass
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.kernels import pointer_ring, serial_chain
from repro.workloads.stats import characterize
from repro.workloads.suite import make_workload


def test_mix_sums_to_one(tiny_workload):
    stats = characterize(tiny_workload)
    assert sum(value for _name, value in stats.mix) == pytest.approx(1.0)


def test_serial_chain_stats():
    stats = characterize(serial_chain(OpClass.FP_ADD, 100))
    assert stats.num_uops == 100
    assert stats.mix_of(OpClass.FP_ADD) == 1.0
    # Every op (after the first) reads the previous op's result.
    assert stats.mean_dep_distance == pytest.approx(1.0)
    assert stats.branch_fraction == 0.0


def test_pointer_ring_footprint():
    ring_bytes = 4 * 1024
    stats = characterize(pointer_ring(length=200, ring_bytes=ring_bytes))
    assert stats.load_fraction == 1.0
    assert stats.data_footprint_bytes <= ring_bytes
    assert stats.data_footprint_bytes >= ring_bytes // 2


def test_generator_mix_matches_spec():
    spec = WorkloadSpec(
        name="m", num_macro_ops=3000, p_load=0.3, p_store=0.1,
        p_branch=0.1, p_fused_load_op=0.0,
    )
    stats = characterize(generate(spec, seed=0))
    assert stats.load_fraction == pytest.approx(0.3, abs=0.05)
    assert stats.store_fraction == pytest.approx(0.1, abs=0.03)
    assert stats.branch_fraction == pytest.approx(0.1, abs=0.03)


def test_fused_fraction_counts_multi_uop_macros():
    spec = WorkloadSpec(
        name="f", num_macro_ops=500, p_load=0.5, p_fused_load_op=1.0
    )
    stats = characterize(generate(spec, seed=1))
    assert stats.fused_macro_fraction == pytest.approx(
        stats.load_fraction * stats.num_uops / stats.num_macro_ops,
        abs=0.1,
    )


def test_dep_distance_tracks_spec_knob():
    near = characterize(
        generate(
            WorkloadSpec(name="n", num_macro_ops=1500, dep_distance_mean=2.0),
            seed=2,
        )
    )
    far = characterize(
        generate(
            WorkloadSpec(name="f", num_macro_ops=1500, dep_distance_mean=30.0),
            seed=2,
        )
    )
    assert far.mean_dep_distance > 2 * near.mean_dep_distance


def test_memory_bound_suite_footprint_exceeds_l2():
    stats = characterize(make_workload("mcf", 2000))
    # A 2000-macro sample of a 16MB set touches far more than L1.
    assert stats.data_footprint_bytes > 48 * 1024


def test_empty_workload_rejected():
    from repro.isa.uop import Workload

    with pytest.raises(ValueError):
        characterize(Workload(name="empty", uops=()))
