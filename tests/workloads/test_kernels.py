"""Micro-kernel tests: structure plus analytically known timing."""

import pytest

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.graphmodel.builder import build_graph
from repro.isa.uop import OpClass, validate_stream
from repro.simulator.core import simulate
from repro.workloads.kernels import (
    daxpy,
    independent_stream,
    pointer_ring,
    reduction_tree,
    serial_chain,
    stream_triad,
)


class TestStructure:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: serial_chain(length=50),
            lambda: independent_stream(length=50),
            lambda: pointer_ring(length=50),
            lambda: stream_triad(iterations=10),
            lambda: daxpy(iterations=10),
            lambda: reduction_tree(leaves=32),
        ],
    )
    def test_kernels_are_valid_streams(self, factory):
        validate_stream(factory().uops)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            serial_chain(length=0)
        with pytest.raises(ValueError):
            reduction_tree(leaves=1)
        with pytest.raises(ValueError):
            stream_triad(iterations=0)

    def test_daxpy_fuses_multiply_add(self):
        workload = daxpy(iterations=5)
        fused = [
            u
            for u in workload
            if u.opclass is OpClass.FP_MUL and not u.eom
        ]
        assert len(fused) == 5

    def test_reduction_tree_work_count(self):
        leaves = 32
        workload = reduction_tree(leaves=leaves)
        # leaves producers + (leaves - 1) pairwise sums
        assert len(workload) == 2 * leaves - 1


class TestAnalyticTiming:
    def test_serial_fp_chain_runs_at_fp_latency(self):
        config = baseline_config()
        length = 200
        result = simulate(serial_chain(OpClass.FP_ADD, length), config)
        fp_latency = config.latency[EventType.FP_ADD]
        # Steady state: one result per FP_ADD latency.
        assert result.cycles == pytest.approx(
            length * fp_latency, rel=0.10
        )

    def test_serial_chain_scales_with_latency(self):
        config = baseline_config()
        fast = config.with_latency_overrides({EventType.FP_ADD: 2})
        slow_cycles = simulate(serial_chain(length=150), config).cycles
        fast_cycles = simulate(serial_chain(length=150), fast).cycles
        assert slow_cycles - fast_cycles == pytest.approx(150 * 4, rel=0.1)

    def test_independent_stream_hits_width_bound(self):
        config = baseline_config()
        result = simulate(
            independent_stream(OpClass.INT_ALU, 400), config
        )
        # Width-4 machine: cannot beat 0.25 CPI and should get close.
        assert result.cpi >= 0.25
        assert result.cpi < 0.45

    def test_pointer_ring_runs_at_load_to_use_latency(self):
        config = baseline_config()
        length = 150
        result = simulate(pointer_ring(length=length), config)
        lat = config.latency
        # Load-to-use on an L1-resident ring: AGU (LD) + L1D access,
        # plus the one-cycle issue stage.
        per_hop = lat[EventType.LD] + lat[EventType.L1D] + 1
        assert result.cycles == pytest.approx(
            length * per_hop, rel=0.15
        )

    def test_pointer_ring_tracks_l1d_latency(self):
        config = baseline_config()
        faster = config.with_latency_overrides({EventType.L1D: 1})
        base_cycles = simulate(pointer_ring(length=150), config).cycles
        fast_cycles = simulate(pointer_ring(length=150), faster).cycles
        assert base_cycles - fast_cycles == pytest.approx(150 * 3, rel=0.15)

    def test_triad_is_serialised_by_store_ordering(self):
        # Table I's conservative memory ordering (loads wait for all
        # earlier stores to execute) chains iteration i+1's loads behind
        # iteration i's store, so triad runs at roughly one iteration
        # per load->mul->add->store chain (~16 cycles), not at the
        # 1.5-cycle width bound an ideal disambiguator would reach.
        config = baseline_config()
        result = simulate(stream_triad(iterations=60), config)
        cycles_per_iteration = result.cycles / 60
        chain = (
            config.latency[EventType.LD]
            + config.latency[EventType.L1D]
            + config.latency[EventType.FP_MUL]
            + config.latency[EventType.FP_ADD]
        )
        assert cycles_per_iteration == pytest.approx(chain, rel=0.3)

    def test_store_free_fp_stream_is_throughput_bound(self):
        # Without stores the iterations genuinely overlap: two FP pipes
        # sustain well under the serial chain latency per pair of ops.
        config = baseline_config()
        workload = independent_stream(OpClass.FP_MUL, 300)
        result = simulate(workload, config)
        assert result.cpi < 1.0  # << the 6-cycle FP_MUL latency

    def test_reduction_tree_faster_than_serial_sum(self):
        config = baseline_config()
        leaves = 64
        tree = simulate(reduction_tree(leaves=leaves), config)
        chain = simulate(
            serial_chain(OpClass.FP_ADD, 2 * leaves - 1), config
        )
        assert tree.cycles < chain.cycles / 2


class TestGraphAgreement:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: serial_chain(length=80),
            lambda: pointer_ring(length=80),
            lambda: stream_triad(iterations=20),
            lambda: daxpy(iterations=20),
        ],
    )
    def test_graph_model_tracks_kernels(self, factory):
        config = baseline_config()
        result = simulate(factory(), config)
        graph = build_graph(result)
        predicted = graph.longest_path_length(config.latency)
        assert predicted == pytest.approx(result.cycles, rel=0.06)

    def test_graph_underestimates_contention_bound_kernel(self):
        # The reduction tree saturates the two FP pipes; Table I has no
        # FU-contention edges (beyond the issue-dependency witness), so
        # the graph under-predicts — a documented model limitation the
        # paper's Fig 10 error bars absorb.
        config = baseline_config()
        result = simulate(reduction_tree(leaves=48), config)
        graph = build_graph(result)
        predicted = graph.longest_path_length(config.latency)
        assert predicted <= result.cycles
        assert predicted == pytest.approx(result.cycles, rel=0.25)


class TestGemm:
    def test_structure_valid(self):
        from repro.workloads.kernels import blocked_gemm

        workload = blocked_gemm(n=4)
        validate_stream(workload.uops)
        # per element: 1 acc load + n*(2 loads + mul + add) + 1 store
        assert len(workload) == 4 * 4 * (2 + 4 * 4)

    def test_bad_size_rejected(self):
        from repro.workloads.kernels import blocked_gemm

        with pytest.raises(ValueError):
            blocked_gemm(n=1)

    def test_fp_chain_dominates_k_loop(self):
        """Each element's adds chain through the accumulator, so cutting
        FP_ADD latency speeds GEMM nearly proportionally."""
        from repro.workloads.kernels import blocked_gemm

        config = baseline_config()
        fast = config.with_latency_overrides({EventType.FP_ADD: 1})
        workload = blocked_gemm(n=6)
        slow_cycles = simulate(workload, config).cycles
        fast_cycles = simulate(workload, fast).cycles
        assert fast_cycles < 0.55 * slow_cycles

    def test_graph_tracks_gemm(self):
        from repro.workloads.kernels import blocked_gemm

        config = baseline_config()
        result = simulate(blocked_gemm(n=5), config)
        graph = build_graph(result)
        assert graph.longest_path_length(config.latency) == pytest.approx(
            result.cycles, rel=0.08
        )
