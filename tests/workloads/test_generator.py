"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.isa.uop import OpClass, validate_stream
from repro.workloads.generator import (
    DATA_BASE,
    NUM_ARCH_REGS,
    WorkloadSpec,
    generate,
)


def spec(**kwargs):
    kwargs.setdefault("name", "test")
    kwargs.setdefault("num_macro_ops", 300)
    return WorkloadSpec(**kwargs)


class TestSpecValidation:
    def test_rejects_overfull_mix(self):
        with pytest.raises(ValueError, match="sum to"):
            spec(p_load=0.6, p_store=0.5)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            spec(p_branch=1.5)

    def test_rejects_zero_macro_ops(self):
        with pytest.raises(ValueError):
            spec(num_macro_ops=0)

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ValueError):
            spec(working_set_bytes=16)

    def test_rejects_serial_dep_distance(self):
        with pytest.raises(ValueError):
            spec(dep_distance_mean=0.5)

    def test_resized_keeps_character(self):
        base = spec(p_fp_add=0.2)
        bigger = base.resized(1000)
        assert bigger.num_macro_ops == 1000
        assert bigger.p_fp_add == base.p_fp_add


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = generate(spec(), seed=42)
        b = generate(spec(), seed=42)
        assert len(a) == len(b)
        for ua, ub in zip(a, b):
            assert ua == ub

    def test_different_seed_different_stream(self):
        a = generate(spec(p_branch=0.2), seed=1)
        b = generate(spec(p_branch=0.2), seed=2)
        assert any(ua != ub for ua, ub in zip(a, b))


class TestStreamShape:
    def test_stream_is_valid(self):
        workload = generate(spec(p_fp_div=0.05, p_int_div=0.05), seed=3)
        validate_stream(workload.uops)

    def test_macro_count_matches_spec(self):
        workload = generate(spec(num_macro_ops=123), seed=0)
        assert workload.num_macro_ops == 123

    def test_mix_roughly_matches_probabilities(self):
        workload = generate(
            spec(num_macro_ops=4000, p_load=0.3, p_branch=0.1), seed=5
        )
        loads = sum(1 for u in workload if u.is_load)
        branches = sum(1 for u in workload if u.is_branch)
        macro_ops = workload.num_macro_ops
        assert loads / macro_ops == pytest.approx(0.3, abs=0.05)
        assert branches / macro_ops == pytest.approx(0.1, abs=0.04)

    def test_fused_load_op_creates_multi_uop_macros(self):
        workload = generate(
            spec(p_load=0.5, p_fused_load_op=1.0, num_macro_ops=200), seed=0
        )
        fused = [
            u for u in workload if not u.som
        ]  # second µop of a macro-op
        assert fused, "expected fused load-op macro-ops"
        for follower in fused:
            assert follower.opclass is OpClass.INT_ALU

    def test_fused_op_depends_on_its_load(self):
        workload = generate(
            spec(p_load=0.5, p_fused_load_op=1.0, num_macro_ops=200), seed=0
        )
        for i, u in enumerate(workload):
            if not u.som:
                load = workload[i - 1]
                assert load.is_load
                assert load.dst_reg in u.src_regs

    def test_addresses_stay_inside_working_set(self):
        ws = 4 * 1024
        workload = generate(
            spec(working_set_bytes=ws, p_load=0.4), seed=1
        )
        for u in workload:
            if u.mem_addr is not None:
                assert DATA_BASE <= u.mem_addr < DATA_BASE + ws

    def test_code_stays_inside_footprint(self):
        fp = 2 * 1024
        workload = generate(spec(code_footprint_bytes=fp), seed=1)
        assert all(0 <= u.pc < fp for u in workload)

    def test_registers_in_range(self):
        workload = generate(spec(p_load=0.3, p_store=0.2), seed=2)
        for u in workload:
            for reg in u.src_regs + u.addr_src_regs:
                assert 0 <= reg < NUM_ARCH_REGS
            if u.dst_reg is not None:
                assert 0 <= u.dst_reg < NUM_ARCH_REGS


class TestPointerChase:
    def test_chased_loads_depend_on_previous_chase(self):
        workload = generate(
            spec(
                p_load=0.6,
                pointer_chase_fraction=1.0,
                p_fused_load_op=0.0,
                num_macro_ops=100,
            ),
            seed=4,
        )
        loads = [u for u in workload if u.is_load]
        # After the first chased load, each load's address register is the
        # previous chased load's destination.
        for prev, cur in zip(loads, loads[1:]):
            assert cur.addr_src_regs == (prev.dst_reg,)

    def test_fully_biased_sites_are_consistent(self):
        workload = generate(
            spec(p_branch=0.5, branch_bias=1.0, hard_branch_fraction=0.0),
            seed=0,
        )
        directions = {}
        for u in workload:
            if u.is_branch:
                directions.setdefault(u.pc, set()).add(u.taken)
        assert directions
        # bias=1.0: every site always goes its dominant direction.
        assert all(len(seen) == 1 for seen in directions.values())

    def test_alternating_sites_alternate(self):
        workload = generate(
            spec(
                p_branch=0.5,
                hard_branch_fraction=0.0,
                alternating_branch_fraction=1.0,
                code_footprint_bytes=64,  # few sites, re-executed often
            ),
            seed=0,
        )
        histories = {}
        for u in workload:
            if u.is_branch:
                histories.setdefault(u.pc, []).append(u.taken)
        assert histories
        for history in histories.values():
            assert all(a != b for a, b in zip(history, history[1:]))

    def test_params_capture_provenance(self):
        workload = generate(spec(), seed=9)
        params = dict(workload.params)
        assert params["seed"] == 9
        assert params["working_set_bytes"] == spec().working_set_bytes
