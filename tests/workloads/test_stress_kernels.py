"""Stress-kernel oracles: one dominant stall event per kernel.

Each UStress-style kernel in :mod:`repro.workloads.kernels` is designed
so a single penalty event should dominate its baseline CPI stack.  The
tests run the full analysis pipeline (simulate, graph, RpStacks) and
assert the intended event really is the argmax of the non-BASE stack
components — a behavioural oracle over the whole simulator, sensitive
to cache/TLB/predictor modelling mistakes that aggregate-CPI checks
would miss.
"""

from __future__ import annotations

import pytest

from repro.common.events import EventType
from repro.dse.pipeline import analyze
from repro.isa.uop import OpClass, validate_stream
from repro.workloads.kernels import (
    STRESS_KERNELS,
    branch_mispredict_storm,
    dcache_thrash,
    divider_pressure,
    dtlb_thrash,
    icache_thrash,
    load_after_store,
)

#: kernel factory -> the event its stack must be dominated by.
EXPECTED_DOMINANT = {
    "branch_mispredict_storm": EventType.BR_MISP,
    "icache_thrash": EventType.L2I,
    "dcache_thrash": EventType.L2D,
    "dtlb_thrash": EventType.DTLB,
    "divider_pressure": EventType.INT_DIV,
    "load_after_store": EventType.L1D,
}

#: Shrunken builds keeping the oracle property but the test fast.
SMALL_BUILDS = {
    "branch_mispredict_storm": lambda: branch_mispredict_storm(256),
    "icache_thrash": lambda: icache_thrash(passes=2),
    "dcache_thrash": lambda: dcache_thrash(passes=2),
    "dtlb_thrash": lambda: dtlb_thrash(passes=2),
    "divider_pressure": lambda: divider_pressure(128),
    "load_after_store": lambda: load_after_store(128),
}


def _dominant_event(workload):
    session = analyze(workload)
    base = session.config.latency
    penalties = session.rpstacks.representative_stack(base).penalties(base)
    penalties.pop(EventType.BASE, None)
    assert penalties, f"{workload.name}: no non-BASE penalty at all"
    return max(penalties.items(), key=lambda item: item[1])[0]


class TestDominance:
    @pytest.mark.parametrize("kernel", sorted(EXPECTED_DOMINANT))
    def test_intended_event_dominates(self, kernel):
        workload = SMALL_BUILDS[kernel]()
        assert _dominant_event(workload) is EXPECTED_DOMINANT[kernel]


class TestStructure:
    def test_registry_is_complete(self):
        assert set(STRESS_KERNELS) == set(EXPECTED_DOMINANT)

    @pytest.mark.parametrize("kernel", sorted(STRESS_KERNELS))
    def test_valid_stream(self, kernel):
        validate_stream(SMALL_BUILDS[kernel]().uops)

    @pytest.mark.parametrize("kernel", sorted(STRESS_KERNELS))
    def test_builders_are_deterministic(self, kernel):
        assert SMALL_BUILDS[kernel]().uops == SMALL_BUILDS[kernel]().uops

    def test_bad_sizes_rejected(self):
        for builder in (
            branch_mispredict_storm, icache_thrash, dcache_thrash,
            divider_pressure, load_after_store,
        ):
            with pytest.raises(ValueError):
                builder(0)
        with pytest.raises(ValueError):
            dtlb_thrash(pages=0)

    def test_mispredict_storm_pattern_is_balanced(self):
        workload = branch_mispredict_storm(512)
        takens = [u.taken for u in workload if u.opclass is OpClass.BRANCH]
        assert len(takens) == 512
        # An LCG high bit is balanced enough to defeat the predictor.
        assert 0.35 < sum(takens) / len(takens) < 0.65

    def test_load_after_store_carries_barrier_witnesses(self):
        from repro.common.config import baseline_config
        from repro.simulator.core import simulate

        result = simulate(load_after_store(64), baseline_config())
        loads = [
            rec
            for rec, u in zip(result.uops, result.workload)
            if u.opclass is OpClass.LOAD
        ]
        assert loads and all(rec.store_barrier >= 0 for rec in loads)
