"""RpStacksModel prediction/inspection tests."""

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import GenerationStats, RpStacksModel


def vec(**units):
    out = np.zeros(NUM_EVENTS)
    for name, value in units.items():
        out[EventType[name]] = value
    return out


@pytest.fixture
def two_segment_model():
    seg0 = np.stack([vec(FP_ADD=4, BASE=10), vec(L1D=5, LD=2, BASE=8)])
    seg1 = np.stack([vec(MEM_D=1, BASE=6)])
    return RpStacksModel(
        [seg0, seg1], baseline=LatencyConfig(), num_uops=100
    )


class TestPrediction:
    def test_sums_per_segment_maxima(self, two_segment_model):
        base = LatencyConfig()
        # seg0: max(4*6+10, 5*4+2*2+8) = max(34, 32) = 34; seg1: 139.
        assert two_segment_model.predict_cycles(base) == 34 + 139

    def test_repricing_switches_segment_winner(self, two_segment_model):
        fast_fp = LatencyConfig().with_overrides({EventType.FP_ADD: 1})
        # seg0 now: max(14, 32) = 32.
        assert two_segment_model.predict_cycles(fast_fp) == 32 + 139

    def test_predict_cpi_normalises(self, two_segment_model):
        base = LatencyConfig()
        assert two_segment_model.predict_cpi(base) == pytest.approx(
            (34 + 139) / 100
        )

    def test_predict_many_matches_loop(self, two_segment_model):
        base = LatencyConfig()
        points = [
            base,
            base.with_overrides({EventType.FP_ADD: 1}),
            base.with_overrides({EventType.MEM_D: 10, EventType.L1D: 1}),
        ]
        batch = two_segment_model.predict_many(points)
        singles = [two_segment_model.predict_cycles(p) for p in points]
        assert np.allclose(batch, singles)


class TestInspection:
    def test_representative_stack_sums_winners(self, two_segment_model):
        stack = two_segment_model.representative_stack(LatencyConfig())
        # Winners at baseline: seg0 row 0, seg1 row 0.
        assert stack[EventType.FP_ADD] == 4
        assert stack[EventType.MEM_D] == 1
        assert stack[EventType.L1D] == 0

    def test_representative_stack_tracks_config(self, two_segment_model):
        fast_fp = LatencyConfig().with_overrides({EventType.FP_ADD: 1})
        stack = two_segment_model.representative_stack(fast_fp)
        assert stack[EventType.L1D] == 5  # memory path wins segment 0

    def test_bottlenecks_ranked(self, two_segment_model):
        top = two_segment_model.bottlenecks(LatencyConfig(), top=2)
        assert top[0][0] == "MemD"
        assert top[0][1] == pytest.approx(133 / 100)

    def test_counts(self, two_segment_model):
        assert two_segment_model.num_segments == 2
        assert two_segment_model.num_paths == 3

    def test_stacks_accessor_returns_value_objects(self, two_segment_model):
        stacks = two_segment_model.stacks(0)
        assert len(stacks) == 2
        assert stacks[0][EventType.FP_ADD] == 4


class TestValidation:
    def test_rejects_empty_model(self):
        with pytest.raises(ValueError):
            RpStacksModel([], baseline=LatencyConfig(), num_uops=10)

    def test_rejects_empty_segment(self):
        with pytest.raises(ValueError):
            RpStacksModel(
                [np.zeros((0, NUM_EVENTS))],
                baseline=LatencyConfig(),
                num_uops=10,
            )

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            RpStacksModel(
                [np.zeros((1, 3))], baseline=LatencyConfig(), num_uops=10
            )

    def test_default_stats(self):
        model = RpStacksModel(
            [np.zeros((1, NUM_EVENTS))],
            baseline=LatencyConfig(),
            num_uops=10,
        )
        assert isinstance(model.stats, GenerationStats)


class TestExplainChange:
    def test_deltas_sum_to_cpi_change(self, two_segment_model):
        base = LatencyConfig()
        after = base.with_overrides({EventType.FP_ADD: 1})
        deltas = two_segment_model.explain_change(base, after)
        cpi_change = two_segment_model.predict_cpi(
            after
        ) - two_segment_model.predict_cpi(base)
        assert sum(deltas.values()) == pytest.approx(cpi_change)

    def test_hidden_path_shows_as_positive_foreign_delta(
        self, two_segment_model
    ):
        # Optimising FP_ADD flips segment 0's winner to the memory
        # stack: L1D/LD contributions *appear* even though their
        # latencies did not change.
        base = LatencyConfig()
        after = base.with_overrides({EventType.FP_ADD: 1})
        deltas = two_segment_model.explain_change(base, after)
        assert deltas[EventType.L1D] > 0
        assert deltas[EventType.FP_ADD] < 0

    def test_no_change_no_deltas(self, two_segment_model):
        base = LatencyConfig()
        assert two_segment_model.explain_change(base, base) == {}


class TestSegmentBottlenecks:
    def test_one_row_per_segment(self, two_segment_model):
        rows = two_segment_model.segment_bottlenecks(LatencyConfig())
        assert [index for index, _label, _share in rows] == [0, 1]

    def test_labels_track_winning_stack(self, two_segment_model):
        rows = two_segment_model.segment_bottlenecks(LatencyConfig())
        # Segment 0's winner at baseline is the FP stack (34 > 32);
        # segment 1's only stack is memory-dominated.
        assert rows[0][1] == "Fadd"
        assert rows[1][1] == "MemD"

    def test_timeline_shifts_with_pricing(self, two_segment_model):
        fast_fp = LatencyConfig().with_overrides({EventType.FP_ADD: 1})
        rows = two_segment_model.segment_bottlenecks(fast_fp)
        assert rows[0][1] == "L1D"  # the memory stack wins segment 0

    def test_shares_are_fractions(self, two_segment_model):
        for _idx, _label, share in two_segment_model.segment_bottlenecks(
            LatencyConfig()
        ):
            assert 0.0 < share <= 1.0


class TestSensitivity:
    def test_gradient_matches_finite_difference(self, two_segment_model):
        base = LatencyConfig()
        gradient = two_segment_model.sensitivity(base)
        for event in (EventType.FP_ADD, EventType.MEM_D):
            bumped = base.with_overrides({event: base[event] + 1})
            finite = two_segment_model.predict_cpi(
                bumped
            ) - two_segment_model.predict_cpi(base)
            assert gradient.get(event, 0.0) == pytest.approx(finite)

    def test_zero_gradient_for_absent_events(self, two_segment_model):
        gradient = two_segment_model.sensitivity(LatencyConfig())
        assert EventType.FP_DIV not in gradient

    def test_gradient_shifts_with_the_winner(self, two_segment_model):
        fast_fp = LatencyConfig().with_overrides({EventType.FP_ADD: 1})
        gradient = two_segment_model.sensitivity(fast_fp)
        # Memory stack wins segment 0 now: L1D has leverage, FP_ADD none.
        assert gradient.get(EventType.L1D, 0.0) > 0
        assert EventType.FP_ADD not in gradient


class TestMatrixPrediction:
    def test_predict_many_of_empty_sequence_is_empty(self, two_segment_model):
        batch = two_segment_model.predict_many([])
        assert isinstance(batch, np.ndarray)
        assert batch.shape == (0,)

    def test_matrix_chunk_matches_per_point(self, two_segment_model):
        base = LatencyConfig()
        points = [
            base,
            base.with_overrides({EventType.FP_ADD: 1}),
            base.with_overrides({EventType.MEM_D: 10, EventType.L1D: 1}),
            base.with_overrides({EventType.L2D: 1, EventType.LD: 5}),
        ]
        thetas = np.stack([p.as_vector() for p in points], axis=1)
        batch = two_segment_model.predict_cycles_matrix(thetas)
        singles = [two_segment_model.predict_cycles(p) for p in points]
        assert list(batch) == singles  # exact, not approx

    def test_empty_matrix_chunk_is_priced_as_empty(self, two_segment_model):
        thetas = np.empty((NUM_EVENTS, 0))
        assert two_segment_model.predict_cycles_matrix(thetas).shape == (0,)

    def test_bad_matrix_shape_rejected(self, two_segment_model):
        with pytest.raises(ValueError, match="NUM_EVENTS"):
            two_segment_model.predict_cycles_matrix(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="NUM_EVENTS"):
            two_segment_model.predict_cycles_matrix(np.zeros(NUM_EVENTS))
