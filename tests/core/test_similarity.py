"""Modified-cosine-similarity tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.events import NUM_EVENTS
from repro.core.similarity import (
    modified_cosine,
    pairwise_modified_cosine,
    similarity_to_set,
)

vectors = hnp.arrays(
    dtype=np.float64,
    shape=NUM_EVENTS,
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


def test_identical_vectors_have_unit_similarity():
    v = np.arange(NUM_EVENTS, dtype=float)
    assert modified_cosine(v, v) == pytest.approx(1.0)


def test_disjoint_support_is_orthogonal():
    a = np.zeros(NUM_EVENTS)
    b = np.zeros(NUM_EVENTS)
    a[1] = 5.0
    b[2] = 7.0
    assert modified_cosine(a, b) == pytest.approx(0.0)


def test_zero_vectors_are_identical_by_convention():
    z = np.zeros(NUM_EVENTS)
    assert modified_cosine(z, z) == 1.0


def test_zero_against_nonzero_is_orthogonal():
    z = np.zeros(NUM_EVENTS)
    v = np.ones(NUM_EVENTS)
    assert modified_cosine(z, v) == 0.0


def test_max_normalisation_balances_magnitudes():
    # Plain cosine would call these nearly parallel (dim 0 dominates);
    # the per-dimension normalisation exposes the disagreement on dim 1.
    a = np.zeros(NUM_EVENTS)
    b = np.zeros(NUM_EVENTS)
    a[0], a[1] = 1000.0, 10.0
    b[0], b[1] = 1000.0, 0.0
    plain = (a @ b) / (np.linalg.norm(a) * np.linalg.norm(b))
    modified = modified_cosine(a, b)
    assert modified < plain
    assert modified == pytest.approx(1 / np.sqrt(2), rel=1e-6)


def test_scale_invariance_of_parallel_vectors():
    a = np.zeros(NUM_EVENTS)
    a[3], a[4] = 2.0, 6.0
    assert modified_cosine(a, 5 * a) == pytest.approx(
        modified_cosine(a, a), rel=1e-9
    )


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        modified_cosine(np.zeros(3), np.zeros(4))


@given(a=vectors, b=vectors)
@settings(max_examples=100, deadline=None)
def test_property_symmetry(a, b):
    assert modified_cosine(a, b) == pytest.approx(
        modified_cosine(b, a), abs=1e-9
    )


@given(a=vectors, b=vectors)
@settings(max_examples=100, deadline=None)
def test_property_range(a, b):
    value = modified_cosine(a, b)
    assert 0.0 <= value <= 1.0


@given(a=vectors)
@settings(max_examples=100, deadline=None)
def test_property_self_similarity(a)	:
    assert modified_cosine(a, a) == pytest.approx(1.0)


@given(
    stacks=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=1, max_value=8),
            st.just(NUM_EVENTS),
        ),
        elements=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
)
@settings(max_examples=60, deadline=None)
def test_property_pairwise_matches_scalar(stacks):
    matrix = pairwise_modified_cosine(stacks)
    k = stacks.shape[0]
    for i in range(k):
        for j in range(k):
            assert matrix[i, j] == pytest.approx(
                modified_cosine(stacks[i], stacks[j]), abs=1e-9
            )


def test_similarity_to_set_matches_scalar():
    rng = np.random.default_rng(0)
    kept = rng.random((5, NUM_EVENTS)) * 10
    candidate = rng.random(NUM_EVENTS) * 10
    sims = similarity_to_set(candidate, kept)
    for i in range(5):
        assert sims[i] == pytest.approx(
            modified_cosine(candidate, kept[i]), abs=1e-9
        )


def test_similarity_to_set_empty_kept():
    assert similarity_to_set(np.zeros(NUM_EVENTS), np.zeros((0, NUM_EVENTS))).size == 0


# ---- convention-parity regression (one shared kernel) ----------------
#
# The three public entry points once held subtly different conventions
# for degenerate inputs (an all-zero row against a nonzero row, two
# all-zero rows); now they all route through one kernel, and this
# differential fuzz pins that the conventions can never drift apart
# again — bit-exact equality, not approx.

degenerate_stacks = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=6),
        st.just(NUM_EVENTS),
    ),
    # Small integers make all-zero rows and shared-support ties common.
    elements=st.integers(min_value=0, max_value=2).map(float),
)


@given(stacks=degenerate_stacks)
@settings(max_examples=150, deadline=None)
def test_property_conventions_agree_bit_exactly(stacks):
    matrix = pairwise_modified_cosine(stacks)
    k = stacks.shape[0]
    for i in range(k):
        row = similarity_to_set(stacks[i], stacks)
        for j in range(k):
            scalar = modified_cosine(stacks[i], stacks[j])
            assert matrix[i, j] == scalar
            assert row[j] == scalar


def test_zero_row_conventions_are_identical_across_entry_points():
    zero = np.zeros(NUM_EVENTS)
    one = np.zeros(NUM_EVENTS)
    one[0] = 3.0
    population = np.stack([zero, one, zero])
    matrix = pairwise_modified_cosine(population)
    # both-zero pairs are identical-by-convention ...
    assert matrix[0, 2] == 1.0 == modified_cosine(zero, zero)
    assert similarity_to_set(zero, population)[2] == 1.0
    # ... while zero-vs-nonzero pairs are orthogonal, everywhere.
    assert matrix[0, 1] == 0.0 == modified_cosine(zero, one)
    assert similarity_to_set(one, population)[0] == 0.0
