"""RpStacks generation invariants.

These pin the soundness arguments of DESIGN.md §5:

1. with a single segment, the prediction at the *baseline* configuration
   equals the exact graph critical-path length (the baseline-maximum
   stack survives every reduction rule);
2. with a single segment, the prediction at *any* configuration never
   exceeds the exact longest path (reduction only discards paths);
3. per-segment predictions equal each segment subgraph's critical path
   at baseline, and the segmented total is >= the unsegmented exact
   critical path (the paper's A-A'/B'-B over-approximation).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import baseline_config
from repro.common.events import LATENCY_DOMAIN, EventType
from repro.core.generator import RpStacksGenerator, generate_rpstacks
from repro.core.reduction import ReductionPolicy
from repro.graphmodel.builder import build_graph
from repro.simulator.core import simulate
from repro.workloads.suite import make_workload

UNSEGMENTED = 10 ** 9


@pytest.fixture(scope="module")
def small_case():
    workload = make_workload("gamess", 120)
    result = simulate(workload, baseline_config())
    graph = build_graph(result)
    return result, graph


class TestBaselineExactness:
    def test_unsegmented_baseline_equals_critical_path(self, small_case):
        result, graph = small_case
        base = result.config.latency
        model = generate_rpstacks(graph, base, segment_length=UNSEGMENTED)
        assert model.predict_cycles(base) == pytest.approx(
            graph.longest_path_length(base)
        )

    def test_exactness_holds_for_any_policy(self, small_case):
        result, graph = small_case
        base = result.config.latency
        for threshold in (0.3, 0.7, 0.95):
            for max_paths in (2, 8):
                model = RpStacksGenerator(
                    graph,
                    base,
                    policy=ReductionPolicy(
                        similarity_threshold=threshold, max_paths=max_paths
                    ),
                    segment_length=UNSEGMENTED,
                ).generate()
                assert model.predict_cycles(base) == pytest.approx(
                    graph.longest_path_length(base)
                ), (threshold, max_paths)


class TestLowerBound:
    @given(
        overrides=st.dictionaries(
            st.sampled_from(list(LATENCY_DOMAIN)),
            st.integers(min_value=1, max_value=150),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_prediction_never_exceeds_exact_longest_path(
        self, small_case, overrides
    ):
        result, graph = small_case
        base = result.config.latency
        model = generate_rpstacks(graph, base, segment_length=UNSEGMENTED)
        latency = base.with_overrides(overrides)
        assert (
            model.predict_cycles(latency)
            <= graph.longest_path_length(latency) + 1e-6
        )


class TestSegmentation:
    def test_segmented_total_bounds_unsegmented_at_baseline(self, small_case):
        result, graph = small_case
        base = result.config.latency
        exact = graph.longest_path_length(base)
        for segment_length in (16, 48, 96):
            model = generate_rpstacks(
                graph, base, segment_length=segment_length
            )
            assert model.predict_cycles(base) >= exact - 1e-6, segment_length

    def test_segment_count(self, small_case):
        result, graph = small_case
        model = generate_rpstacks(
            graph, result.config.latency, segment_length=50
        )
        expected = (graph.num_uops + 49) // 50
        assert model.num_segments == expected

    def test_single_uop_segments_still_work(self, small_case):
        result, graph = small_case
        model = generate_rpstacks(
            graph, result.config.latency, segment_length=1
        )
        assert model.num_segments == graph.num_uops
        assert model.predict_cycles(result.config.latency) > 0

    def test_invalid_segment_length_rejected(self, small_case):
        result, graph = small_case
        with pytest.raises(ValueError):
            RpStacksGenerator(
                graph, result.config.latency, segment_length=0
            )


class TestDiversity:
    def test_multiple_paths_survive_on_mixed_workload(self, small_case):
        result, graph = small_case
        model = generate_rpstacks(
            graph, result.config.latency, segment_length=UNSEGMENTED
        )
        assert model.num_paths > 1

    def test_uniqueness_preserves_event_dimension_coverage(self, small_case):
        """With preservation on, the model must keep a witness stack for
        every event the exact critical path can be driven onto; turning
        it off may lose dimensions (Fig 14's accuracy collapse)."""
        import numpy as np

        result, graph = small_case
        base = result.config.latency
        with_unique = generate_rpstacks(
            graph, base, segment_length=UNSEGMENTED, preserve_unique=True
        )
        without_unique = generate_rpstacks(
            graph, base, segment_length=UNSEGMENTED, preserve_unique=False
        )
        dims_on = (
            np.vstack(with_unique.segment_stacks) > 0
        ).any(axis=0)
        dims_off = (
            np.vstack(without_unique.segment_stacks) > 0
        ).any(axis=0)
        # Preservation never covers fewer dimensions than disabling it.
        assert (dims_on | dims_off == dims_on).all()

    def test_stats_are_collected(self, small_case):
        result, graph = small_case
        model = generate_rpstacks(graph, result.config.latency)
        assert model.stats.nodes_visited == graph.num_nodes
        assert model.stats.reductions > 0
        assert model.stats.analysis_seconds > 0
