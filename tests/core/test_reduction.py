"""Path-reduction tests: dominance soundness, uniqueness, merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.reduction import (
    ReductionPolicy,
    reduce_stacks,
    unique_dimension_mask,
)

BASE_THETA = LatencyConfig().as_vector()


def stack(**units):
    vec = np.zeros(NUM_EVENTS)
    for name, value in units.items():
        vec[EventType[name]] = value
    return vec


def stacks(*rows):
    return np.asarray(rows)


class TestPolicy:
    def test_threshold_range_enforced(self):
        with pytest.raises(ValueError):
            ReductionPolicy(similarity_threshold=1.5)

    def test_max_paths_positive(self):
        with pytest.raises(ValueError):
            ReductionPolicy(max_paths=0)


class TestDominance:
    def test_dominated_row_is_dropped(self):
        population = stacks(
            stack(L1D=3, FP_ADD=2),
            stack(L1D=2, FP_ADD=1),  # dominated
        )
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        assert reduced.shape[0] == 1
        assert (reduced[0] == population[0]).all()

    def test_incomparable_rows_survive(self):
        population = stacks(
            stack(FP_ADD=10),
            stack(MEM_D=1),
        )
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        assert reduced.shape[0] == 2

    def test_duplicates_collapse_to_one(self):
        row = stack(L1D=2, LD=1)
        reduced = reduce_stacks(
            stacks(row, row, row), BASE_THETA, ReductionPolicy()
        )
        assert reduced.shape[0] == 1

    def test_dominance_is_sound_for_any_pricing(self):
        # If A is dropped by dominance, no non-negative pricing makes A
        # longer than the kept set's maximum.
        population = stacks(
            stack(L1D=3, FP_ADD=2, LD=1),
            stack(L1D=1, FP_ADD=2),
            stack(L1D=3, FP_ADD=1, LD=1),
        )
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        rng = np.random.default_rng(0)
        for _ in range(200):
            theta = rng.random(NUM_EVENTS) * 100
            assert (population @ theta).max() <= (reduced @ theta).max() + 1e-9


class TestUniqueness:
    def test_unique_dimension_mask(self):
        population = stacks(
            stack(L1D=5, FP_ADD=1),
            stack(L1D=4, FP_ADD=2),
            stack(L1D=1, FP_DIV=1),  # only row with FP_DIV
        )
        mask = unique_dimension_mask(population)
        assert mask.tolist() == [False, False, True]

    def test_unique_path_survives_merging(self):
        # Rows 0 and 2 are highly similar; row 2 owns MEM_D so it must
        # not be merged away.
        population = stacks(
            stack(L1D=10, LD=5),
            stack(L1D=9, LD=5, MEM_D=1),
        )
        policy = ReductionPolicy(similarity_threshold=0.5)
        reduced = reduce_stacks(population, BASE_THETA, policy)
        assert reduced.shape[0] == 2

    def test_disabling_uniqueness_allows_the_merge(self):
        population = stacks(
            stack(L1D=10, LD=5),
            stack(L1D=9, LD=5, MEM_D=1),
        )
        policy = ReductionPolicy(
            similarity_threshold=0.5, preserve_unique=False
        )
        reduced = reduce_stacks(population, BASE_THETA, policy)
        # MEM_D row prices higher at baseline (133 > ...), so it is the
        # keeper; the other is absorbed.
        assert reduced.shape[0] == 1


class TestMerging:
    def test_similar_rows_merge_keeping_larger(self):
        population = stacks(
            stack(FP_ADD=10, L1D=2),
            stack(FP_ADD=9, L1D=2),
        )
        policy = ReductionPolicy(similarity_threshold=0.7)
        reduced = reduce_stacks(population, BASE_THETA, policy)
        assert reduced.shape[0] == 1
        assert reduced[0][EventType.FP_ADD] == 10

    def test_dissimilar_rows_survive(self):
        population = stacks(
            stack(FP_ADD=10),
            stack(L1D=10),
        )
        policy = ReductionPolicy(similarity_threshold=0.7)
        reduced = reduce_stacks(population, BASE_THETA, policy)
        assert reduced.shape[0] == 2

    def test_threshold_one_disables_merging(self):
        # Incomparable rows (neither dominates) that are highly similar:
        # only merging could collapse them, and τ=1 turns merging off.
        population = stacks(
            stack(FP_ADD=10, L1D=2),
            stack(FP_ADD=9, L1D=3),
        )
        policy = ReductionPolicy(similarity_threshold=1.0)
        reduced = reduce_stacks(population, BASE_THETA, policy)
        assert reduced.shape[0] == 2


class TestCap:
    def test_population_capped(self):
        rng = np.random.default_rng(1)
        population = rng.random((100, NUM_EVENTS)) * 10
        policy = ReductionPolicy(similarity_threshold=1.0, max_paths=8)
        reduced = reduce_stacks(population, BASE_THETA, policy)
        assert reduced.shape[0] <= 8

    def test_baseline_maximum_always_first(self):
        rng = np.random.default_rng(2)
        population = rng.random((50, NUM_EVENTS)) * 10
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        assert (reduced @ BASE_THETA).max() == pytest.approx(
            (population @ BASE_THETA).max()
        )
        assert reduced[0] @ BASE_THETA == pytest.approx(
            (population @ BASE_THETA).max()
        )


class TestProperties:
    populations = hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=1, max_value=20), st.just(NUM_EVENTS)
        ),
        elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )

    @given(population=populations)
    @settings(max_examples=60, deadline=None)
    def test_property_reduction_never_grows(self, population):
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        assert 1 <= reduced.shape[0] <= population.shape[0]

    @given(population=populations)
    @settings(max_examples=60, deadline=None)
    def test_property_kept_rows_come_from_input(self, population):
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        originals = {row.tobytes() for row in population}
        for row in reduced:
            assert row.tobytes() in originals

    @given(population=populations)
    @settings(max_examples=60, deadline=None)
    def test_property_baseline_maximum_preserved(self, population):
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        assert (reduced @ BASE_THETA).max() == pytest.approx(
            (population @ BASE_THETA).max()
        )

    @given(population=populations)
    @settings(max_examples=60, deadline=None)
    def test_property_result_sorted_by_baseline_penalty(self, population):
        reduced = reduce_stacks(population, BASE_THETA, ReductionPolicy())
        penalties = reduced @ BASE_THETA
        assert (np.diff(penalties) <= 1e-9).all()


class TestBaseInSimilarity:
    def test_including_base_inflates_similarity(self):
        # Two paths sharing the pipeline backbone (BASE) plus two stall
        # dims, each owning one distinct event.  Per-dimension-max
        # normalisation gives sim = shared/sqrt(d_a * d_b): with the
        # backbone counted that is 3/4 = 0.75 > tau, without it
        # 2/3 = 0.67 < tau — including BASE flips the merge decision.
        population = stacks(
            stack(BASE=100, L1D=8, LD=4, FP_ADD=6),
            stack(BASE=100, L1D=8, LD=4, MEM_D=1),
        )
        stall_only = reduce_stacks(
            population, BASE_THETA,
            ReductionPolicy(similarity_threshold=0.7),
        )
        with_base = reduce_stacks(
            population, BASE_THETA,
            ReductionPolicy(
                similarity_threshold=0.7,
                include_base_in_similarity=True,
                preserve_unique=False,
            ),
        )
        assert stall_only.shape[0] == 2
        assert with_base.shape[0] == 1

    def test_uniqueness_protects_under_base_similarity(self):
        # Same backbone-dominated pair, but each owns its dimension, so
        # with preservation on both survive even base-style similarity.
        population = stacks(
            stack(BASE=100, L1D=8, LD=4, FP_ADD=6),
            stack(BASE=100, L1D=8, LD=4, MEM_D=1),
        )
        kept = reduce_stacks(
            population, BASE_THETA,
            ReductionPolicy(
                similarity_threshold=0.7,
                include_base_in_similarity=True,
                preserve_unique=True,
            ),
        )
        assert kept.shape[0] == 2


class TestCapPriority:
    """The max_paths cap when unique rows alone exceed the budget:
    row 0 (the baseline maximum) always survives, then uniqueness
    witnesses in descending-penalty order, then everything else."""

    THETA = np.ones(NUM_EVENTS)

    def population(self):
        # Penalties (under unit pricing) strictly descend; rows 0 and 1
        # share their support (neither is unique), rows 2-4 each own a
        # dimension no other row touches.  No row dominates another.
        return stacks(
            stack(L1D=10, LD=2),      # 12: baseline maximum, non-unique
            stack(L1D=2, LD=9),       # 11: non-unique
            stack(L1D=1, FP_ADD=9),   # 10: owns FP_ADD
            stack(L1D=1, MEM_D=8),    # 9:  owns MEM_D
            stack(L1D=1, L2D=7),      # 8:  owns L2D
        )

    def test_unique_rows_outrank_larger_non_unique_rows(self):
        population = self.population()
        policy = ReductionPolicy(similarity_threshold=1.0, max_paths=3)
        reduced = reduce_stacks(population, self.THETA, policy)
        expected = population[[0, 2, 3]]
        assert reduced.shape == expected.shape
        assert (reduced == expected).all()
        # The non-unique row 1 lost its slot to smaller unique rows,
        # and the smallest unique row fell off the end of the budget.
        kept = {row.tobytes() for row in reduced}
        assert population[1].tobytes() not in kept
        assert population[4].tobytes() not in kept

    def test_baseline_maximum_survives_a_cap_of_one(self):
        population = self.population()
        policy = ReductionPolicy(similarity_threshold=1.0, max_paths=1)
        reduced = reduce_stacks(population, self.THETA, policy)
        assert reduced.shape[0] == 1
        assert (reduced[0] == population[0]).all()

    def test_without_preservation_cap_is_by_penalty(self):
        population = self.population()
        policy = ReductionPolicy(
            similarity_threshold=1.0, max_paths=3, preserve_unique=False
        )
        reduced = reduce_stacks(population, self.THETA, policy)
        assert (reduced == population[[0, 1, 2]]).all()


class TestPairParity:
    """The two-candidate fast path must be indistinguishable from the
    general reduction machinery — pinned as a differential property over
    random pairs, zero-priced theta dimensions and exact ties."""

    pair_rows = hnp.arrays(
        dtype=np.float64,
        shape=(2, NUM_EVENTS),
        # Small integers on purpose: exact penalty ties and identical
        # rows then occur often enough for hypothesis to exercise the
        # dedup/tiebreak branches.
        elements=st.integers(min_value=0, max_value=3).map(float),
    )
    thetas = hnp.arrays(
        dtype=np.float64,
        shape=NUM_EVENTS,
        # Zeros allowed: a zero-priced dimension makes distinct rows tie
        # exactly, the regime where fast-path drift once hid.
        elements=st.integers(min_value=0, max_value=4).map(float),
    )

    @given(
        pair=pair_rows,
        theta=thetas,
        threshold=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        max_paths=st.integers(min_value=1, max_value=4),
        preserve_unique=st.booleans(),
        include_base=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_pair_fast_path_matches_general_path(
        self, pair, theta, threshold, max_paths, preserve_unique,
        include_base,
    ):
        policy = ReductionPolicy(
            similarity_threshold=threshold,
            max_paths=max_paths,
            preserve_unique=preserve_unique,
            include_base_in_similarity=include_base,
        )
        # Two rows route through _reduce_pair; appending a duplicate of
        # the first row forces the general path (dedup collapses it back
        # to the same two-row population before reducing).
        fast = reduce_stacks(pair, theta, policy)
        general = reduce_stacks(
            np.vstack([pair, pair[:1]]), theta, policy
        )
        assert fast.shape == general.shape
        assert (fast == general).all()
