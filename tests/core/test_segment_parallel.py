"""Segment-parallel generation differentials (§IV-D).

Segments are independent by construction — cross-boundary dependences
are dropped and every segment starts from a fresh zero stack — so the
parallel walk must be *invisible* in the results:

1. ``jobs=N`` produces a byte-identical :class:`RpStacksModel` to
   ``jobs=1`` on every suite workload (order-merged segment results);
2. the array-native segment walk is bit-identical to the reference
   whole-graph dictionary walk it replaced;
3. the compiled C per-node reducer is bit-identical to the numpy
   reduction it fast-paths, both at the reduce level (fuzz over
   block-structured populations) and end-to-end with the fallback
   forced via ``REPRO_NATIVE=0``.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.common.config import baseline_config
from repro.common.events import NUM_EVENTS, EventType
from repro.core.generator import RpStacksGenerator, generate_rpstacks
from repro.core.native import load_native
from repro.core.reduction import ReductionPolicy, reduce_blocks, reduce_stacks
from repro.graphmodel.builder import build_graph
from repro.simulator.core import simulate
from repro.workloads.suite import make_workload, suite_names

MACROS = 120
SEGMENT_LENGTH = 64


def _graph(name, macros=MACROS):
    workload = make_workload(name, macros)
    result = simulate(workload, baseline_config())
    return build_graph(result)


class TestSerialParallelParity:
    @pytest.mark.parametrize("name", suite_names())
    def test_models_byte_identical_across_jobs(self, name):
        graph = _graph(name)
        base = baseline_config().latency
        serial = generate_rpstacks(
            graph, base, segment_length=SEGMENT_LENGTH, jobs=1
        )
        parallel = generate_rpstacks(
            graph, base, segment_length=SEGMENT_LENGTH, jobs=2
        )
        assert serial.num_segments == parallel.num_segments
        for mine, theirs in zip(
            serial.segment_stacks, parallel.segment_stacks
        ):
            assert mine.shape == theirs.shape
            assert (mine == theirs).all()
        assert serial.content_digest() == parallel.content_digest()

    def test_content_digest_detects_differences(self):
        graph = _graph("gamess")
        base = baseline_config().latency
        a = generate_rpstacks(graph, base, segment_length=SEGMENT_LENGTH)
        b = generate_rpstacks(graph, base, segment_length=2 * SEGMENT_LENGTH)
        assert a.content_digest() != b.content_digest()


class TestArrayWalkMatchesReference:
    @pytest.mark.parametrize("name", ["gamess", "mcf", "omnetpp"])
    def test_segment_walk_matches_reference_walk(self, name):
        graph = _graph(name)
        generator = RpStacksGenerator(
            graph,
            baseline_config().latency,
            segment_length=SEGMENT_LENGTH,
        )
        fast = generator._generate()
        reference = generator._generate_reference()
        assert fast.num_segments == reference.num_segments
        for mine, theirs in zip(
            fast.segment_stacks, reference.segment_stacks
        ):
            assert mine.shape == theirs.shape
            assert (mine == theirs).all()

    def test_include_base_threads_through_generation(self):
        graph = _graph("gamess")
        base = baseline_config().latency
        off = generate_rpstacks(
            graph, base, segment_length=SEGMENT_LENGTH,
            include_base_in_similarity=False,
        )
        on = generate_rpstacks(
            graph, base, segment_length=SEGMENT_LENGTH,
            include_base_in_similarity=True,
        )
        assert off.content_digest() != on.content_digest()


class TestSegmentView:
    def test_covers_all_nodes_without_overlap(self):
        graph = _graph("gamess")
        count = graph.num_segments(SEGMENT_LENGTH)
        assert count > 1
        total = 0
        for seg in range(count):
            view = graph.segment_view(seg, SEGMENT_LENGTH)
            assert view.node_offset == total
            total += view.num_nodes
        assert total == graph.num_nodes

    def test_drops_only_cross_boundary_edges(self):
        graph = _graph("gamess")
        count = graph.num_segments(SEGMENT_LENGTH)
        kept = sum(
            graph.segment_view(seg, SEGMENT_LENGTH).edge_src.shape[0]
            for seg in range(count)
        )
        # Count intra-segment edges straight off the flat edge list.
        seg_of = lambda node: node // (
            SEGMENT_LENGTH * (graph.num_nodes // graph.num_uops)
        )
        intra = sum(
            1
            for s, d in zip(graph.edge_src, graph.edge_dst)
            if seg_of(int(s)) == seg_of(int(d))
        )
        assert kept == intra
        assert kept < graph.edge_src.shape[0]

    def test_local_edges_stay_in_range(self):
        graph = _graph("mcf")
        view = graph.segment_view(0, SEGMENT_LENGTH)
        assert (view.edge_src >= 0).all()
        assert (view.edge_src < view.num_nodes).all()
        assert view.in_indptr[-1] == view.edge_src.shape[0]

    def test_out_of_range_segment_rejected(self):
        graph = _graph("gamess")
        count = graph.num_segments(SEGMENT_LENGTH)
        with pytest.raises(IndexError):
            graph.segment_view(count, SEGMENT_LENGTH)
        with pytest.raises(IndexError):
            graph.segment_view(-1, SEGMENT_LENGTH)


def _random_block_population(rng):
    """A concatenation of pre-reduced, constant-shifted blocks — the
    invariant ``reduce_blocks`` (and the C reducer) relies on."""
    policy = ReductionPolicy(
        similarity_threshold=float(rng.choice([0.0, 0.3, 0.7, 0.9, 1.0])),
        max_paths=int(rng.integers(1, 9)),
        preserve_unique=bool(rng.integers(0, 2)),
        include_base_in_similarity=bool(rng.integers(0, 2)),
    )
    theta = rng.integers(0, 5, size=NUM_EVENTS).astype(np.float64)
    theta[EventType.BASE] = 1.0
    blocks = []
    for _ in range(int(rng.integers(2, 5))):
        raw = rng.integers(0, 4, size=(int(rng.integers(1, 6)), NUM_EVENTS))
        reduced = reduce_stacks(
            np.asarray(raw, dtype=np.float64), theta, policy
        )
        shift = rng.integers(0, 3, size=NUM_EVENTS).astype(np.float64)
        blocks.append(reduced + shift)
    sizes = np.asarray([b.shape[0] for b in blocks], dtype=np.int32)
    return np.ascontiguousarray(np.vstack(blocks)), sizes, theta, policy


class TestNativeReducerParity:
    def test_native_matches_numpy_reduction(self):
        native = load_native()
        if native is None:
            pytest.skip("no C toolchain available in this environment")
        rng = np.random.default_rng(7)
        out = np.empty(256, dtype=np.int32)
        for _ in range(150):
            stacks, sizes, theta, policy = _random_block_population(rng)
            expected = reduce_blocks(stacks, sizes, theta, policy)
            sim_lo = (
                0
                if policy.include_base_in_similarity
                else EventType.BASE + 1
            )
            kept = native.reduce_node_indices(
                stacks,
                sizes,
                np.ascontiguousarray(theta),
                sim_lo,
                policy.similarity_threshold,
                policy.max_paths,
                policy.preserve_unique,
                out,
            )
            got = stacks[out[:kept]]
            assert got.shape == expected.shape
            assert (got == expected).all()

    def test_numpy_fallback_is_byte_identical_end_to_end(self):
        graph = _graph("gamess", macros=80)
        base = baseline_config().latency
        local = generate_rpstacks(graph, base, segment_length=SEGMENT_LENGTH)
        script = (
            "import sys\n"
            "from repro.common.config import baseline_config\n"
            "from repro.core.generator import generate_rpstacks\n"
            "from repro.graphmodel.builder import build_graph\n"
            "from repro.simulator.core import simulate\n"
            "from repro.workloads.suite import make_workload\n"
            "result = simulate(make_workload('gamess', 80),"
            " baseline_config())\n"
            "model = generate_rpstacks(build_graph(result),"
            f" baseline_config().latency, segment_length={SEGMENT_LENGTH})\n"
            "sys.stdout.write(model.content_digest())\n"
        )
        env = dict(os.environ, REPRO_NATIVE="0")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert proc.stdout.strip() == local.content_digest()
