"""Model serialisation round-trip tests."""

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.io import ModelFormatError, load_model, save_model
from repro.core.model import RpStacksModel


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    segments = [rng.integers(0, 9, (4, NUM_EVENTS)).astype(float),
                rng.integers(0, 9, (2, NUM_EVENTS)).astype(float)]
    baseline = LatencyConfig().with_overrides({EventType.L1D: 2})
    return RpStacksModel(segments, baseline=baseline, num_uops=777)


def test_round_trip_preserves_predictions(model, tmp_path):
    path = save_model(model, tmp_path / "model")
    loaded = load_model(path)
    for overrides in ({}, {EventType.FP_MUL: 1}, {EventType.MEM_D: 40}):
        latency = LatencyConfig().with_overrides(overrides)
        assert loaded.predict_cycles(latency) == model.predict_cycles(
            latency
        )


def test_round_trip_preserves_structure(model, tmp_path):
    loaded = load_model(save_model(model, tmp_path / "m"))
    assert loaded.num_uops == model.num_uops
    assert loaded.num_segments == model.num_segments
    assert loaded.baseline == model.baseline
    for a, b in zip(loaded.segment_stacks, model.segment_stacks):
        assert np.array_equal(a, b)


def test_npz_suffix_appended(model, tmp_path):
    path = save_model(model, tmp_path / "bare")
    assert path.suffix == ".npz"
    assert path.exists()


def test_parent_directories_created(model, tmp_path):
    path = save_model(model, tmp_path / "deep" / "nested" / "m.npz")
    assert path.exists()


def test_rejects_non_model_npz(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, data=np.zeros(3))
    with pytest.raises(ModelFormatError, match="not an RpStacks model"):
        load_model(path)


def test_rejects_tampered_event_count(model, tmp_path):
    import json

    path = save_model(model, tmp_path / "m")
    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files}
    meta = json.loads(bytes(arrays["meta_json"]).decode())
    meta["num_events"] = NUM_EVENTS + 1
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)
    with pytest.raises(ModelFormatError, match="taxonomy mismatch"):
        load_model(path)


def test_real_model_round_trip(gamess_session, tmp_path):
    model = gamess_session.rpstacks
    loaded = load_model(save_model(model, tmp_path / "gamess"))
    base = gamess_session.config.latency
    assert loaded.predict_cpi(base) == pytest.approx(
        model.predict_cpi(base)
    )
    probe = base.with_overrides({EventType.L1D: 1, EventType.FP_ADD: 1})
    assert loaded.predict_cycles(probe) == pytest.approx(
        model.predict_cycles(probe)
    )
