"""StallEventStack value-object tests."""

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.stack import StallEventStack


def test_zeros_prices_to_zero():
    assert StallEventStack.zeros().cycles(LatencyConfig()) == 0.0


def test_from_mapping_and_pricing():
    stack = StallEventStack.from_mapping(
        {EventType.FP_ADD: 2, EventType.L1D: 3}
    )
    # 2*6 + 3*4 at Table II latencies.
    assert stack.cycles(LatencyConfig()) == 24.0


def test_pricing_respects_overrides():
    stack = StallEventStack.from_mapping({EventType.MEM_D: 1})
    fast = LatencyConfig().with_overrides({EventType.MEM_D: 10})
    assert stack.cycles(fast) == 10.0


def test_penalties_reports_nonzero_components_only():
    stack = StallEventStack.from_mapping({EventType.L2D: 2})
    penalties = stack.penalties(LatencyConfig())
    assert penalties == {EventType.L2D: 24.0}


def test_addition_accumulates():
    a = StallEventStack.from_mapping({EventType.L1D: 1})
    b = StallEventStack.from_mapping({EventType.L1D: 2, EventType.LD: 1})
    c = a + b
    assert c[EventType.L1D] == 3
    assert c[EventType.LD] == 1


def test_equality_and_hash_by_value():
    a = StallEventStack.from_mapping({EventType.ITLB: 1})
    b = StallEventStack.from_mapping({EventType.ITLB: 1})
    assert a == b
    assert hash(a) == hash(b)
    assert a != StallEventStack.zeros()


def test_units_are_read_only():
    stack = StallEventStack.zeros()
    with pytest.raises(ValueError):
        stack.units[0] = 1.0


def test_rejects_wrong_shape():
    with pytest.raises(ValueError):
        StallEventStack([1.0, 2.0])


def test_rejects_negative_units():
    units = np.zeros(NUM_EVENTS)
    units[3] = -1
    with pytest.raises(ValueError):
        StallEventStack(units)


def test_nonzero_events():
    stack = StallEventStack.from_mapping(
        {EventType.FP_DIV: 1, EventType.BASE: 5}
    )
    assert set(stack.nonzero_events()) == {EventType.FP_DIV, EventType.BASE}


def test_describe_mentions_dominant_event():
    stack = StallEventStack.from_mapping(
        {EventType.MEM_D: 2, EventType.L1D: 1}
    )
    text = stack.describe(LatencyConfig())
    assert "MemD" in text
    assert text.index("MemD") < text.index("L1D")  # largest first


def test_describe_normalises_to_cpi():
    stack = StallEventStack.from_mapping({EventType.L1D: 10})
    text = stack.describe(LatencyConfig(), num_uops=10)
    assert "CPI" in text
    assert "total=4.000" in text
