"""Shared plumbing for the serve test suite: an in-process daemon
factory plus a tiny blocking HTTP client, so tests exercise the real
socket path without shelling out per request."""

import http.client
import json

import pytest

from repro.obs.observer import Observer
from repro.serve.server import ServeConfig, ServerThread

#: Small enough that a cold build is sub-second, large enough that the
#: pipeline is exercised for real.
MACROS = 120

COORD = {"workload": "gamess", "macros": MACROS}


@pytest.fixture
def make_server(tmp_path):
    """Factory: start a ServerThread with an enabled observer and a
    per-test artifact cache; every server started is drained at
    teardown."""
    started = []

    def factory(model_transform=None, **overrides):
        overrides.setdefault("cache_dir", str(tmp_path / "cache"))
        overrides.setdefault("workers", 2)
        obs = Observer(enabled=True, progress_stream=None)
        thread = ServerThread(
            ServeConfig(**overrides),
            obs=obs,
            model_transform=model_transform,
        ).start()
        started.append(thread)
        return thread

    yield factory
    for thread in started:
        thread.stop()


def request(
    port,
    method,
    path,
    payload=None,
    *,
    raw_body=None,
    timeout=60.0,
    headers=None,
):
    """One blocking HTTP exchange; returns (status, headers, body bytes)."""
    body = raw_body
    if payload is not None:
        body = json.dumps(payload).encode()
    send_headers = {"Content-Type": "application/json"} if body else {}
    if headers:
        send_headers.update(headers)
    connection = http.client.HTTPConnection(
        "127.0.0.1", port, timeout=timeout
    )
    try:
        connection.request(method, path, body=body, headers=send_headers)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def request_json(port, method, path, payload=None, **kwargs):
    status, _headers, body = request(
        port, method, path, payload, **kwargs
    )
    return status, json.loads(body)
