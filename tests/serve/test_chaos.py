"""Chaos drills for the daemon, driven by seeded fault plans.

Two failure families the serving layer must absorb:

* **worker death** — a sweep job's worker process SIGKILLs itself
  mid-chunk; the runtime respawns the pool, retries the shard, and the
  job still completes — with ``attempts > 1`` recorded and a front
  bit-identical to an undisturbed run;
* **client death** — a client disconnects mid-request (body never
  arrives) or mid-response (socket reset before the reply lands); the
  server counts the abort in ``/metrics`` and keeps serving.
"""

import json
import socket
import struct
import time

from tests.chaos import faults
from tests.serve.conftest import COORD, request_json

JOB_PAYLOAD = {
    **COORD,
    "axes": {
        "L1D": [1, 2, 3, 4],
        "FP_ADD": [1, 2, 3, 4, 5],
        "MEM_D": [20, 40, 60, 80, 100],
    },
    "chunk_size": 16,
}


def _arm(plan, tmp_path, monkeypatch):
    for key, value in faults.arm(plan, tmp_path / "chaos").items():
        monkeypatch.setenv(key, value)


def _chaos_transform(model):
    """Module-level so the wrapped predictor pickles into pool workers."""
    return faults.ChaosModel(model, probe_id="serve-job")


def _submit_and_wait(port, payload, timeout=120.0):
    status, submitted = request_json(port, "POST", "/jobs", payload)
    assert status == 202
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, polled = request_json(
            port, "GET", f"/jobs/{submitted['job_id']}"
        )
        if polled["state"] in ("done", "failed"):
            return polled
        time.sleep(0.05)
    raise AssertionError(f"job {submitted['job_id']} never finished")


def test_worker_sigkill_mid_job_still_completes(
    tmp_path, monkeypatch, make_server
):
    """Seeded plan: the first chunk priced anywhere SIGKILLs its worker.
    The sharded job retries, completes with attempts > 1, and its front
    matches a later undisturbed run bit for bit."""
    _arm(
        {"serve-job": {"kind": "sigkill", "attempts": 1}},
        tmp_path,
        monkeypatch,
    )
    server = make_server(
        jobs=2, retries=2, model_transform=_chaos_transform
    )
    # Warm the session first so the job goes straight to sweeping.
    status, _body = request_json(
        server.port, "POST", "/analyze", COORD, timeout=120
    )
    assert status == 200

    chaotic = _submit_and_wait(server.port, JOB_PAYLOAD)
    assert chaotic["state"] == "done", chaotic
    assert chaotic["attempts"] > 1, (
        "worker was SIGKILLed but no retry was recorded"
    )

    # The plan's one faulty attempt is spent (attempt markers persist
    # across processes), so this run is undisturbed: same request, and
    # the fronts must agree exactly.
    clean = _submit_and_wait(server.port, JOB_PAYLOAD)
    assert clean["state"] == "done"
    assert clean["attempts"] == 1

    _status, chaotic_front = request_json(
        server.port, "GET", f"/jobs/{chaotic['job_id']}/front"
    )
    _status, clean_front = request_json(
        server.port, "GET", f"/jobs/{clean['job_id']}/front"
    )
    assert chaotic_front["pareto_front"] == clean_front["pareto_front"]
    assert chaotic_front["num_meeting_target"] == (
        clean_front["num_meeting_target"]
    )

    counters = server.server.obs.metrics.snapshot()["counters"]
    assert counters["runner.retries"] >= 1  # merged from the job observer


def test_client_disconnect_mid_request_counts_abort(make_server):
    """Half a body, then FIN: the server reaps the connection, counts
    one abort, and the next request on a fresh connection is normal."""
    server = make_server(read_timeout=1.0)
    with socket.create_connection(("127.0.0.1", server.port), 30) as sock:
        sock.sendall(
            b"POST /analyze HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 100\r\n\r\nten bytes!"
        )
    # FIN arrived before the declared 100 bytes: readexactly fails
    # immediately (IncompleteReadError) — no timeout wait needed.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        _status, metrics = request_json(server.port, "GET", "/metrics")
        aborts = metrics["metrics"]["counters"].get(
            "serve.client_aborts", 0
        )
        if aborts >= 1:
            break
        time.sleep(0.02)
    assert aborts == 1

    status, health = request_json(server.port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"


def test_client_disconnect_mid_response_counts_abort(make_server):
    """Reset the socket while a cold analyze is computing: when the
    server finally writes the response, the connection is gone.  It
    counts the abort and stays healthy."""
    server = make_server()
    body = json.dumps({"workload": "mcf", "macros": 2000}).encode()
    sock = socket.create_connection(("127.0.0.1", server.port), 30)
    try:
        sock.sendall(
            b"POST /analyze HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body) + body
        )
        # Wait until the request is admitted (the build is running) …
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _status, metrics = request_json(server.port, "GET", "/metrics")
            if metrics["serve"]["inflight_requests"] >= 1:
                break
            time.sleep(0.01)
        assert metrics["serve"]["inflight_requests"] >= 1
        # … then vanish with a reset (SO_LINGER 0 sends RST on close),
        # so the server's eventual write/drain fails deterministically.
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            struct.pack("ii", 1, 0),
        )
    finally:
        sock.close()

    deadline = time.monotonic() + 60
    aborts = 0
    while time.monotonic() < deadline:
        _status, metrics = request_json(server.port, "GET", "/metrics")
        aborts = metrics["metrics"]["counters"].get(
            "serve.client_aborts", 0
        )
        if aborts >= 1:
            break
        time.sleep(0.05)
    assert aborts >= 1, "mid-response disconnect was never counted"

    # The abort cost the server nothing: the session it built is warm
    # and immediately serves the next client.
    status, analysis = request_json(
        server.port, "POST", "/analyze",
        {"workload": "mcf", "macros": 2000}, timeout=30,
    )
    assert status == 200
    assert analysis["baseline_cpi"] > 0
    _status, health = request_json(server.port, "GET", "/healthz")
    assert health["status"] == "ok"
