"""Endpoint round-trips, backpressure, and graceful SIGTERM drain."""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

from repro.serve.protocol import MAX_BODY_BYTES
from tests.serve.conftest import COORD, request, request_json


def test_healthz_and_metrics_roundtrip(make_server):
    server = make_server()
    status, health = request_json(server.port, "GET", "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["jobs"] == {
        "queued": 0, "running": 0, "done": 0, "failed": 0
    }
    status, metrics = request_json(server.port, "GET", "/metrics")
    assert status == 200
    assert metrics["serve"]["sessions"] == 0
    # The registry export is live: the healthz hit above is counted.
    assert metrics["metrics"]["counters"]["serve.requests"] >= 1


def test_analyze_then_predict_share_one_session(make_server):
    server = make_server()
    status, analysis = request_json(
        server.port, "POST", "/analyze", {**COORD, "top": 3}
    )
    assert status == 200
    assert analysis["baseline_cpi"] > 1.0
    assert len(analysis["bottlenecks"]) == 3
    assert analysis["model_digest"]
    status, prediction = request_json(
        server.port, "POST", "/predict",
        {**COORD, "overrides": {"L2D": 40}},
    )
    assert status == 200
    assert prediction["baseline_cpi"] == analysis["baseline_cpi"]
    assert prediction["predicted_cpi"] > 0
    _status, metrics = request_json(server.port, "GET", "/metrics")
    assert metrics["serve"]["sessions"] == 1
    counters = metrics["metrics"]["counters"]
    assert counters["serve.session_builds"] == 1
    assert counters["serve.session_hits"] >= 1


def test_predict_accepts_display_labels(make_server):
    """Event keys parse through parse_event: 'Fmul' == 'FP_MUL'."""
    server = make_server()
    _status, by_name = request_json(
        server.port, "POST", "/predict",
        {**COORD, "overrides": {"FP_MUL": 4}},
    )
    _status, by_label = request_json(
        server.port, "POST", "/predict",
        {**COORD, "overrides": {"Fmul": 4}},
    )
    assert by_name == by_label


def test_job_lifecycle_to_front(make_server):
    server = make_server()
    job_request = {
        **COORD,
        "axes": {"L2D": [10, 20, 30], "FP_MUL": [2, 4]},
        "chunk_size": 4,
    }
    status, submitted = request_json(
        server.port, "POST", "/jobs", job_request
    )
    assert status == 202
    assert submitted["state"] == "queued"
    assert submitted["num_points"] == 6
    job_id = submitted["job_id"]

    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status, polled = request_json(
            server.port, "GET", f"/jobs/{job_id}"
        )
        assert status == 200
        if polled["state"] in ("done", "failed"):
            break
        time.sleep(0.05)
    assert polled["state"] == "done", polled
    assert polled["attempts"] == 1
    assert polled["front_size"] >= 1

    status, front = request_json(
        server.port, "GET", f"/jobs/{job_id}/front"
    )
    assert status == 200
    assert front["num_points"] == 6
    assert len(front["pareto_front"]) == polled["front_size"]
    for candidate in front["pareto_front"]:
        assert set(candidate) == {"latency", "predicted_cpi", "cost"}


def test_job_front_not_ready_is_409_and_unknown_404(make_server):
    server = make_server()
    status, body = request_json(server.port, "GET", "/jobs/job-nope")
    assert status == 404
    assert body["error"]["status"] == 404
    # A job against a cold session spends a while building it; its
    # front must 409 (not 500) while queued/running.
    status, submitted = request_json(
        server.port, "POST", "/jobs",
        {**COORD, "macros": 200, "axes": {"L1D": [1, 2, 3]}},
    )
    assert status == 202
    status, body = request_json(
        server.port, "GET", f"/jobs/{submitted['job_id']}/front"
    )
    assert status in (200, 409)  # 200 only if it finished that fast
    if status == 409:
        assert "poll" in body["error"]["message"]


def test_unknown_paths_methods_and_workloads(make_server):
    server = make_server()
    status, _body = request_json(server.port, "GET", "/nope")
    assert status == 404
    status, _body = request_json(server.port, "POST", "/healthz", {})
    assert status == 405
    status, body = request_json(
        server.port, "POST", "/analyze", {"workload": "not-a-workload"}
    )
    assert status == 404
    assert "unknown workload" in body["error"]["message"]


def test_oversized_body_is_413(make_server):
    """A declared-oversize body is refused before it is read: the 413
    arrives even though the client never sends a single body byte."""
    import socket

    server = make_server()
    with socket.create_connection(("127.0.0.1", server.port), 30) as sock:
        sock.sendall(
            b"POST /analyze HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: %d\r\n\r\n" % (MAX_BODY_BYTES + 1)
        )
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = sock.recv(4096)
            if not chunk:
                break
            response += chunk
    assert response.startswith(b"HTTP/1.1 413 ")
    assert b"Connection: close" in response


def test_post_without_content_length_is_411(make_server):
    server = make_server()
    import http.client

    connection = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=30
    )
    try:
        # Hand-rolled request: http.client would add Content-Length.
        connection.connect()
        connection.sock.sendall(
            b"POST /analyze HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        response = http.client.HTTPResponse(connection.sock)
        response.begin()
        assert response.status == 411
    finally:
        connection.close()


def test_backpressure_returns_429_with_retry_after(make_server):
    """Fill the only heavy slot, then watch the next cold request bounce."""
    server = make_server(workers=1, queue_limit=0)
    slow = {"workload": "gamess", "macros": 4000}
    results = {}

    def occupy():
        results["slow"] = request_json(
            server.port, "POST", "/analyze", slow, timeout=120
        )

    thread = threading.Thread(target=occupy, daemon=True)
    thread.start()
    # Wait until the slow build is admitted to the heavy plane.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        _status, metrics = request_json(server.port, "GET", "/metrics")
        if metrics["serve"]["admitted_heavy"] >= 1:
            break
        time.sleep(0.01)
    assert metrics["serve"]["admitted_heavy"] >= 1

    status, headers, body = request(
        server.port, "POST", "/analyze",
        {"workload": "mcf", "macros": 4000},
    )
    assert status == 429
    assert "Retry-After" in headers
    assert int(headers["Retry-After"]) >= 1
    assert json.loads(body)["error"]["status"] == 429

    thread.join(timeout=120)
    assert results["slow"][0] == 200  # the occupant still completed
    _status, metrics = request_json(server.port, "GET", "/metrics")
    assert metrics["metrics"]["counters"]["serve.rejected"] >= 1


def test_sigterm_drains_gracefully(tmp_path):
    """Real process, real signal: the in-flight request completes and
    the daemon exits 0 — the CI serve-smoke contract."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_TRACE_OUT", None)
    env.pop("REPRO_METRICS_JSON", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--cache-dir", str(tmp_path / "cache"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    try:
        banner = proc.stderr.readline().strip()
        match = re.search(r":(\d+)$", banner)
        assert match, f"no port in banner {banner!r}"
        port = int(match.group(1))

        results = {}

        def inflight():
            results["slow"] = request_json(
                port, "POST", "/analyze",
                {"workload": "gamess", "macros": 3000},
                timeout=120,
            )

        thread = threading.Thread(target=inflight, daemon=True)
        thread.start()
        time.sleep(0.3)  # let the request reach the server
        proc.send_signal(signal.SIGTERM)
        thread.join(timeout=120)
        returncode = proc.wait(timeout=60)
        assert returncode == 0
        status, body = results["slow"]
        assert status == 200
        assert body["baseline_cpi"] > 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
