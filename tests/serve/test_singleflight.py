"""Single-flight semantics: a stampede of identical cold requests
performs exactly one computation, and everyone gets the same answer."""

import asyncio
import concurrent.futures

from repro.serve.singleflight import SingleFlight
from tests.serve.conftest import COORD, request


# --------------------------------------------------------------------------
# unit level
# --------------------------------------------------------------------------


def test_concurrent_callers_share_one_execution():
    async def scenario():
        flight = SingleFlight()
        calls = []
        release = asyncio.Event()

        async def compute():
            calls.append(1)
            await release.wait()
            return "value"

        tasks = [
            asyncio.ensure_future(flight.run("key", compute))
            for _ in range(16)
        ]
        await asyncio.sleep(0)  # let every task reach the flight
        assert flight.inflight() == 1
        release.set()
        results = await asyncio.gather(*tasks)
        assert len(calls) == 1
        assert {value for value, _leader in results} == {"value"}
        assert sum(leader for _value, leader in results) == 1
        assert flight.inflight() == 0

    asyncio.run(scenario())


def test_leader_failure_propagates_then_key_resets():
    async def scenario():
        flight = SingleFlight()
        attempts = []

        async def failing():
            attempts.append(1)
            await asyncio.sleep(0)
            raise RuntimeError("boom")

        tasks = [
            asyncio.ensure_future(flight.run("key", failing))
            for _ in range(4)
        ]
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        assert len(attempts) == 1  # one execution, four failures seen
        assert all(
            isinstance(outcome, RuntimeError) for outcome in outcomes
        )
        # The key is cleared: a later call retries fresh.
        value, leader = await flight.run(
            "key", lambda: _async_value("recovered")
        )
        assert (value, leader) == ("recovered", True)
        assert len(attempts) == 1

    async def _async_value(value):
        return value

    asyncio.run(scenario())


def test_distinct_keys_do_not_coalesce():
    async def scenario():
        flight = SingleFlight()
        calls = []

        def make(key):
            async def compute():
                calls.append(key)
                await asyncio.sleep(0)
                return key

            return compute

        results = await asyncio.gather(
            flight.run("a", make("a")), flight.run("b", make("b"))
        )
        assert sorted(calls) == ["a", "b"]
        assert [value for value, _leader in results] == ["a", "b"]

    asyncio.run(scenario())


# --------------------------------------------------------------------------
# live stampede
# --------------------------------------------------------------------------


def test_cold_analyze_stampede_computes_once(make_server):
    """N concurrent identical cold /analyze requests: exactly one
    simulation (one ``cache.store`` span, one cache miss), N
    bit-identical response bodies."""
    server = make_server(workers=2, queue_limit=16)
    stampede = 12

    def hit(_index):
        return request(
            server.port, "POST", "/analyze", COORD, timeout=120
        )

    with concurrent.futures.ThreadPoolExecutor(
        max_workers=stampede
    ) as pool:
        responses = list(pool.map(hit, range(stampede)))

    statuses = [status for status, _headers, _body in responses]
    assert statuses == [200] * stampede
    bodies = {body for _status, _headers, body in responses}
    assert len(bodies) == 1, "stampede responses diverged"

    obs = server.server.obs
    store_spans = [
        span for span in obs.tracer.spans if span.name == "cache.store"
    ]
    assert len(store_spans) == 1, (
        f"expected exactly one computation, saw "
        f"{len(store_spans)} cache.store spans"
    )
    counters = obs.metrics.snapshot()["counters"]
    assert counters["cache.miss"] == 1
    assert counters.get("cache.hit", 0) == 0
    assert counters["serve.session_builds"] == 1
    assert counters["serve.session_coalesced"] == stampede - 1

    # And the warm path afterwards touches neither flight nor cache.
    status, _headers, body = request(
        server.port, "POST", "/analyze", COORD
    )
    assert status == 200
    assert body in bodies
    counters = obs.metrics.snapshot()["counters"]
    assert counters["serve.session_hits"] >= 1
    assert counters["cache.miss"] == 1
