"""Property tests for the serve wire protocol.

Three guarantees, each hammered by Hypothesis:

* every valid request round-trips ``from_dict(to_dict(r)) == r``;
* malformed and oversized input is rejected with a typed
  :class:`ProtocolError` carrying a 4xx status — never any other
  exception (the server's 500 boundary must be unreachable from
  input alone), and against a live socket never a hang;
* job ids stay unique under concurrent submission.
"""

import concurrent.futures
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.events import LATENCY_DOMAIN, EVENT_LABELS
from repro.serve.jobs import JobRegistry
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    AnalyzeRequest,
    JobRequest,
    PredictRequest,
    ProtocolError,
    decode_body,
    encode_body,
)

events = st.sampled_from(list(LATENCY_DOMAIN))
cycles = st.integers(min_value=1, max_value=100_000)

coords = st.fixed_dictionaries(
    {"workload": st.sampled_from(["gamess", "mcf", "milc"])},
    optional={
        "macros": st.integers(min_value=1, max_value=1_000_000),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "segment_length": st.integers(min_value=1, max_value=65_536),
    },
)


def _with_events_as_names(mapping):
    return {event.name: value for event, value in mapping.items()}


analyze_payloads = st.builds(
    lambda coord, top: {**coord, **top},
    coords,
    st.fixed_dictionaries(
        {}, optional={"top": st.integers(min_value=1, max_value=64)}
    ),
)

predict_payloads = st.builds(
    lambda coord, overrides: {
        **coord,
        "overrides": _with_events_as_names(overrides),
    },
    coords,
    st.dictionaries(events, cycles, max_size=len(LATENCY_DOMAIN)),
)

job_payloads = st.builds(
    lambda coord, axes, extras: {
        **coord,
        "axes": {
            event.name: sorted(values)
            for event, values in axes.items()
        },
        **extras,
    },
    coords,
    st.dictionaries(
        events,
        st.sets(cycles, min_size=1, max_size=5),
        min_size=1,
        max_size=4,
    ),
    st.fixed_dictionaries(
        {},
        optional={
            "chunk_size": st.integers(min_value=1, max_value=1 << 20),
            "target_cpi": st.floats(
                min_value=0.01, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            ),
            "top_k": st.integers(min_value=1, max_value=1000),
        },
    ),
)


@settings(max_examples=200)
@given(analyze_payloads)
def test_analyze_roundtrip(payload):
    parsed = AnalyzeRequest.from_dict(payload)
    assert AnalyzeRequest.from_dict(parsed.to_dict()) == parsed


@settings(max_examples=200)
@given(predict_payloads)
def test_predict_roundtrip(payload):
    parsed = PredictRequest.from_dict(payload)
    assert PredictRequest.from_dict(parsed.to_dict()) == parsed
    # Canonical encoding is stable: encode(decode(encode(x))) fixpoint.
    wire = encode_body(parsed.to_dict())
    assert encode_body(decode_body(wire)) == wire


@settings(max_examples=200)
@given(job_payloads)
def test_job_roundtrip(payload):
    parsed = JobRequest.from_dict(payload)
    again = JobRequest.from_dict(parsed.to_dict())
    assert again == parsed
    assert parsed.num_points >= 1


@settings(max_examples=100)
@given(predict_payloads)
def test_display_labels_parse_to_same_request(payload):
    """'Fmul' and 'FP_MUL' (any case) name the same override."""
    relabelled = dict(payload)
    relabelled["overrides"] = {
        EVENT_LABELS[next(e for e in LATENCY_DOMAIN if e.name == name)]:
            value
        for name, value in payload["overrides"].items()
    }
    assert PredictRequest.from_dict(relabelled) == (
        PredictRequest.from_dict(payload)
    )


# --------------------------------------------------------------------------
# malformed input: always ProtocolError 4xx, never anything else
# --------------------------------------------------------------------------

junk_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)


@settings(max_examples=300)
@given(junk_values)
def test_junk_payloads_reject_with_4xx(value):
    for parser in (
        AnalyzeRequest.from_dict,
        PredictRequest.from_dict,
        JobRequest.from_dict,
    ):
        try:
            parser(value)
        except ProtocolError as error:
            assert 400 <= error.status < 500
        # Not raising is fine only if the junk happened to be valid.


@settings(max_examples=200)
@given(st.binary(max_size=512))
def test_junk_bytes_reject_with_4xx(raw):
    try:
        decode_body(raw)
    except ProtocolError as error:
        assert 400 <= error.status < 500


def test_oversized_body_is_413_in_decode():
    with pytest.raises(ProtocolError) as exc:
        decode_body(b"0" * (MAX_BODY_BYTES + 1))
    assert exc.value.status == 413


# --------------------------------------------------------------------------
# live socket: junk in, 4xx out, connection never hangs
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def junk_server():
    from repro.obs.observer import Observer
    from repro.serve.server import ServeConfig, ServerThread

    thread = ServerThread(
        ServeConfig(read_timeout=2.0),
        obs=Observer(enabled=True, progress_stream=None),
    ).start()
    yield thread
    thread.stop()


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(st.binary(min_size=0, max_size=200))
def test_live_junk_bodies_get_4xx_never_500_never_hang(
    junk_server, raw
):
    from tests.serve.conftest import request

    status, _headers, body = request(
        junk_server.port, "POST", "/analyze", raw_body=raw or b"x",
        timeout=30,
    )
    assert 400 <= status < 500, (status, body)
    assert json.loads(body)["error"]["status"] == status


def test_truncated_body_never_hangs_connection(junk_server):
    """Declared length, half the bytes, no close: the read timeout
    reaps it instead of leaking a stuck connection."""
    import socket

    with socket.create_connection(
        ("127.0.0.1", junk_server.port), 30
    ) as sock:
        sock.sendall(
            b"POST /analyze HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 100\r\n\r\nhalf"
        )
        sock.settimeout(30)
        # The server must close the connection (timeout abort), not
        # hold it open waiting forever.
        assert sock.recv(4096) == b""


# --------------------------------------------------------------------------
# job ids
# --------------------------------------------------------------------------


def test_job_ids_unique_under_concurrent_submission():
    registry = JobRegistry(retention=10_000)
    request_obj = JobRequest.from_dict(
        {"workload": "gamess", "axes": {"L1D": [1, 2]}}
    )
    with concurrent.futures.ThreadPoolExecutor(max_workers=16) as pool:
        records = list(
            pool.map(
                lambda _i: registry.create(request_obj), range(2000)
            )
        )
    ids = [record.job_id for record in records]
    assert len(set(ids)) == len(ids)


def test_live_concurrent_submissions_get_unique_ids(make_server):
    from tests.serve.conftest import COORD, request_json

    server = make_server(queue_limit=64)
    payload = {**COORD, "axes": {"L1D": [1, 2]}, "chunk_size": 2}

    def submit(_index):
        return request_json(server.port, "POST", "/jobs", payload)

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        responses = list(pool.map(submit, range(24)))
    assert all(status == 202 for status, _body in responses)
    ids = [body["job_id"] for _status, body in responses]
    assert len(set(ids)) == len(ids)
