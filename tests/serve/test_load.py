"""Load test: sustained warm-path throughput against a live daemon.

Two layers:

* a direct :func:`repro.serve.loadgen.run_load` drive asserting the
  ISSUE's floor — ≥ 200 warm requests/s sustained with a bounded p99 —
  plus zero errors and byte-identical bodies;
* the registered ``serve_latency`` bench scenario run end to end at the
  reduced tier, proving the committed-baseline path (measure protocol,
  digest parity, ``requests_per_second`` aux) works, so
  ``repro bench compare`` can gate regressions in CI.
"""

import json

from repro.obs.bench import get_scenario, run_scenario
from repro.serve.loadgen import run_load
from tests.serve.conftest import COORD, request_json

#: The ISSUE's acceptance floor at the reduced scale.  The daemon
#: sustains well over 1k req/s on one core; 200 leaves headroom for a
#: noisy shared runner without weakening the claim that the warm path
#: is serving-grade.
MIN_REQUESTS_PER_SECOND = 200.0

#: Warm predicts run in ~1ms; p99 beyond this means queueing pathology.
MAX_P99_SECONDS = 0.25


def test_sustained_warm_path_throughput_and_p99(make_server):
    server = make_server(workers=1)
    # Prime: one cold analyze builds the session the load run reuses.
    status, _body = request_json(
        server.port, "POST", "/analyze", COORD, timeout=120
    )
    assert status == 200

    body = json.dumps(
        {**COORD, "overrides": {"L2D": 30, "FP_MUL": 2}}
    ).encode()
    report = run_load(
        "127.0.0.1",
        server.port,
        "/predict",
        body,
        requests=400,
        concurrency=4,
        warmup=20,
    )
    assert report.errors == 0, report.status_counts
    assert report.requests == 400
    assert report.status_counts == {200: 400}
    assert report.requests_per_second >= MIN_REQUESTS_PER_SECOND, (
        f"warm path sustained only "
        f"{report.requests_per_second:.0f} req/s"
    )
    assert report.percentile(0.99) <= MAX_P99_SECONDS, (
        f"p99 {report.percentile(0.99) * 1000:.1f} ms"
    )
    assert report.percentile(0.50) <= report.percentile(0.99)
    # Bit-identical bodies across the whole run (raises if diverged).
    assert report.digest

    # The server kept serving its warm plane throughout.
    status, health = request_json(server.port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"


def test_backpressure_honored_not_counted_as_errors(make_server):
    """Regression: a 429 with ``Retry-After`` used to be booked as a
    plain error, skewing the committed req/s floor under saturation.
    Against a zero-queue single-worker daemon the load generator must
    sleep out the hint, re-send the same request, and report the
    bounces in ``backpressured`` — finishing every logical request with
    zero errors."""
    server = make_server(workers=1, queue_limit=0)
    # Prime the session so job sweeps themselves are warm and quick.
    status, _body = request_json(
        server.port, "POST", "/analyze", COORD, timeout=120
    )
    assert status == 200

    # POST /jobs rides the heavy plane: with workers=1 and no queue,
    # concurrent submissions beyond the one admitted job bounce 429.
    body = json.dumps(
        {**COORD, "axes": {"L1D": [1, 2, 3], "L2D": [6, 12]}}
    ).encode()
    report = run_load(
        "127.0.0.1",
        server.port,
        "/jobs",
        body,
        requests=24,
        concurrency=6,
        backoff_cap=0.05,
        timeout=120,
    )
    assert report.errors == 0, report.status_counts
    assert report.requests == 24
    assert report.status_counts.get(202) == 24
    assert report.backpressured > 0
    assert report.status_counts.get(429) == report.backpressured

    # The warm plane stayed responsive under saturation.
    status, health = request_json(server.port, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"


def test_serve_latency_scenario_records_through_bench_harness():
    """The committed-baseline path: run the registered scenario at the
    ci tier and check the record carries throughput + a stable digest."""
    scenario = get_scenario("serve_latency")
    record = run_scenario(scenario, tier="ci", repeats=2, warmup=1)
    assert record.scenario == "serve_latency"
    assert record.tier == "ci"
    assert record.digest  # parity across reps already enforced inside
    assert record.counters["serve.client_requests"] == (
        record.scale["requests"]
    )
    assert record.aux["requests_per_second"] >= MIN_REQUESTS_PER_SECOND
    assert len(record.samples) == 2
