"""JobRegistry retention/eviction tests (regression for the quadratic
``_evict_locked`` scan and its fruitless all-live re-scans)."""

from repro.serve.jobs import JobRegistry
from repro.serve.protocol import JobRequest


class CountingDict(dict):
    """A record store that counts lookups, so the tests can assert the
    eviction pass is single-scan rather than scan-per-eviction."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.lookups = 0

    def __getitem__(self, key):
        self.lookups += 1
        return super().__getitem__(key)


def make_request():
    return JobRequest.from_dict(
        {
            "workload": "gamess",
            "macros": 120,
            "axes": {"L1D": [1, 2]},
        }
    )


def make_registry(retention):
    registry = JobRegistry(retention=retention)
    registry._records = CountingDict(registry._records)
    return registry


class TestEviction:
    def test_under_retention_keeps_everything(self):
        registry = make_registry(retention=8)
        records = [registry.create(make_request()) for _ in range(8)]
        assert registry.active() == 8
        assert [r.job_id for r in records] == registry._order

    def test_oldest_terminal_records_evicted_first(self):
        registry = make_registry(retention=4)
        records = [registry.create(make_request()) for _ in range(4)]
        for record in records[:3]:
            record.state = "done"
        # Two more creates: the two oldest terminal records go, the
        # remaining terminal one and every live job survive, in order.
        fifth = registry.create(make_request())
        sixth = registry.create(make_request())
        assert registry.get(records[0].job_id) is None
        assert registry.get(records[1].job_id) is None
        assert registry.get(records[2].job_id) is records[2]
        assert registry._order == [
            records[2].job_id,
            records[3].job_id,
            fifth.job_id,
            sixth.job_id,
        ]

    def test_all_live_over_retention_neither_evicts_nor_spins(self):
        """Live jobs are never evicted — and discovering that costs at
        most one pass over the registry, not a rescanning loop."""
        registry = make_registry(retention=2)
        records = [registry.create(make_request()) for _ in range(50)]
        assert registry.active() == 50  # nothing evicted
        registry._records.lookups = 0
        with registry._lock:
            registry._evict_locked()
        assert registry.active() == 50
        assert registry._records.lookups <= len(records)

    def test_mass_eviction_is_a_single_pass(self):
        """Evicting K records must cost one ordered scan (the old loop
        rescanned from the top per eviction — quadratic under churn)."""
        registry = make_registry(retention=10)
        records = [registry.create(make_request()) for _ in range(10)]
        for record in records:
            record.state = "failed"
        # Push the registry 40 over retention in one burst by loading
        # records directly, then evict once.
        for _ in range(40):
            record = registry.create(make_request())
            record.state = "done"
        assert registry.active() == 0
        assert len(registry._order) == 10
        registry._records.lookups = 0
        for record in [registry.get(job_id) for job_id in registry._order]:
            record.state = "done"
        registry._retention = 2
        with registry._lock:
            registry._evict_locked()
        assert len(registry._order) == 2
        assert registry._records.lookups <= 10
