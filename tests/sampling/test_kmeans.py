"""K-means and BIC model-selection tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.kmeans import bic_score, choose_k, kmeans


def blobs(centres, per_blob=30, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for centre in centres:
        points.append(
            np.asarray(centre) + rng.normal(0, spread, (per_blob, len(centre)))
        )
    return np.vstack(points)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points = blobs([(0, 0), (10, 10), (0, 10)])
        result = kmeans(points, 3, seed=1)
        # Each blob's 30 points share one label.
        for blob in range(3):
            labels = result.labels[blob * 30 : (blob + 1) * 30]
            assert len(set(labels.tolist())) == 1

    def test_k_one_gives_global_mean(self):
        points = blobs([(0, 0), (4, 4)])
        result = kmeans(points, 1, seed=0)
        assert np.allclose(result.centroids[0], points.mean(axis=0), atol=0.1)

    def test_deterministic_for_seed(self):
        points = blobs([(0, 0), (5, 5)])
        a = kmeans(points, 2, seed=3)
        b = kmeans(points, 2, seed=3)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_k_rejected(self):
        points = blobs([(0, 0)])
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, len(points) + 1)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 1)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_inertia_and_labels_consistent(self, seed, k):
        points = blobs([(0, 0), (6, 6)], per_blob=10, seed=seed)
        result = kmeans(points, k, seed=seed)
        assert result.labels.shape == (points.shape[0],)
        assert result.labels.max() < k
        recomputed = sum(
            ((points[i] - result.centroids[result.labels[i]]) ** 2).sum()
            for i in range(points.shape[0])
        )
        assert result.inertia == pytest.approx(recomputed, rel=1e-9)

    def test_more_clusters_never_increase_inertia(self):
        points = blobs([(0, 0), (5, 5), (9, 0)], per_blob=20)
        inertias = [kmeans(points, k, seed=0).inertia for k in (1, 2, 3)]
        assert inertias[0] >= inertias[1] >= inertias[2]


class TestModelSelection:
    def test_bic_prefers_true_cluster_count(self):
        points = blobs([(0, 0), (10, 10), (0, 10)], per_blob=40)
        scores = {
            k: bic_score(points, kmeans(points, k, seed=0))
            for k in (1, 2, 3, 4, 5)
        }
        assert max(scores, key=scores.get) == 3

    def test_choose_k_finds_the_blobs(self):
        points = blobs([(0, 0), (10, 10)], per_blob=40)
        result = choose_k(points, max_k=5, seed=0)
        assert result.k == 2

    def test_choose_k_single_phase(self):
        points = blobs([(1, 1)], per_blob=60, spread=0.01)
        result = choose_k(points, max_k=4, seed=0)
        assert result.k <= 2
