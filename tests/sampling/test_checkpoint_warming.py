"""Checkpoint-warming semantics of simpoint_machine."""

import pytest

from repro.sampling.simpoint import select_simpoints, simpoint_machine
from repro.simulator.machine import Machine
from repro.workloads.generator import WorkloadSpec, generate


@pytest.fixture(scope="module")
def looping():
    """A branchy looping workload where predictor state matters."""
    return generate(
        WorkloadSpec(
            name="loopy", num_macro_ops=900, p_load=0.2, p_branch=0.2,
            alternating_branch_fraction=0.3, hard_branch_fraction=0.0,
            working_set_bytes=16 * 1024, code_footprint_bytes=512,
        ),
        seed=8,
    )


@pytest.fixture(scope="module")
def simpoints(looping):
    return select_simpoints(looping, interval_macros=300)


def test_machine_measures_the_interval(looping, simpoints):
    for sp in simpoints:
        machine = simpoint_machine(looping, sp)
        assert machine.workload is sp.workload


def test_warming_tracks_in_situ_behaviour(looping, simpoints):
    """A warmed interval's CPI must be closer to its in-situ CPI than a
    bare (self-warmed-only) slice for at least the later intervals."""
    full = Machine(looping).simulate()
    seq_bounds = {}
    macro_starts = [u.seq for u in looping if u.som]
    for sp in simpoints:
        lo = sp.start_uop
        hi = lo + len(sp.workload)
        start_cycle = full.uops[lo].t_commit if lo else 0
        in_situ = (full.uops[hi - 1].t_commit - start_cycle) / (hi - lo)
        seq_bounds[sp.interval_index] = in_situ

    for sp in simpoints:
        if sp.start_uop == 0:
            continue  # the first interval has no prefix to warm with
        warmed = simpoint_machine(looping, sp).simulate().cpi
        in_situ = seq_bounds[sp.interval_index]
        assert warmed == pytest.approx(in_situ, rel=0.25), sp.interval_index


def test_prefix_training_reduces_mispredictions(looping, simpoints):
    later = [sp for sp in simpoints if sp.start_uop > 0]
    if not later:
        pytest.skip("clustering picked only the first interval")
    sp = later[-1]
    bare = Machine(sp.workload).simulate()
    warmed = simpoint_machine(looping, sp).simulate()
    # The bare slice warms its predictor on itself (oracle-ish for its
    # own stream), so equality is possible; the warmed one must never be
    # *worse* than twice bare and must track in-situ state.
    assert (
        warmed.stats["branch_mispredictions"]
        <= 2 * bare.stats["branch_mispredictions"] + 4
    )
