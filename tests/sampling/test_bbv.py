"""BBV profiling tests."""

import numpy as np
import pytest

from repro.sampling.bbv import (
    basic_block_ids,
    interval_vectors,
    random_projection,
)
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.suite import make_workload


@pytest.fixture(scope="module")
def branchy():
    return generate(
        WorkloadSpec(
            name="branchy", num_macro_ops=400, p_branch=0.2,
            code_footprint_bytes=2 * 1024,
        ),
        seed=0,
    )


def test_one_id_per_macro_op(branchy):
    assert len(basic_block_ids(branchy)) == branchy.num_macro_ops


def test_ids_are_dense_from_zero(branchy):
    ids = basic_block_ids(branchy)
    assert min(ids) == 0
    assert set(ids) == set(range(max(ids) + 1))


def test_block_changes_only_after_branches(branchy):
    ids = basic_block_ids(branchy)
    macro_uops = [u for u in branchy if u.som]
    branch_positions = set()
    macro_index = 0
    is_branch_macro = {}
    for u in branchy:
        if u.som:
            is_branch_macro[macro_index] = False
            macro_index += 1
        if u.is_branch:
            is_branch_macro[macro_index - 1] = True
    for i in range(1, len(ids)):
        if ids[i] != ids[i - 1]:
            assert is_branch_macro[i - 1], f"block changed at {i} w/o branch"


def test_interval_vectors_are_l1_normalised(branchy):
    vectors, _bounds = interval_vectors(branchy, 100)
    assert np.allclose(vectors.sum(axis=1), 1.0)


def test_interval_bounds_tile_the_stream(branchy):
    _vectors, bounds = interval_vectors(branchy, 100)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == len(branchy)
    for (lo_a, hi_a), (lo_b, hi_b) in zip(bounds, bounds[1:]):
        assert hi_a == lo_b


def test_interval_count(branchy):
    vectors, bounds = interval_vectors(branchy, 150)
    expected = (branchy.num_macro_ops + 149) // 150
    assert vectors.shape[0] == expected == len(bounds)


def test_invalid_interval_rejected(branchy):
    with pytest.raises(ValueError):
        interval_vectors(branchy, 0)


def test_projection_reduces_dimension(branchy):
    vectors, _ = interval_vectors(branchy, 50)
    projected = random_projection(vectors, dimensions=5, seed=1)
    assert projected.shape == (vectors.shape[0], 5)


def test_projection_is_deterministic(branchy):
    vectors, _ = interval_vectors(branchy, 50)
    a = random_projection(vectors, dimensions=5, seed=1)
    b = random_projection(vectors, dimensions=5, seed=1)
    assert np.array_equal(a, b)


def test_projection_skipped_when_already_small():
    vectors = np.ones((3, 4)) / 4
    assert random_projection(vectors, dimensions=10).shape == (3, 4)


def test_similar_phases_have_similar_vectors():
    # A looping kernel (code footprint much smaller than the stream):
    # every interval re-executes the same blocks, so BBVs are close.
    workload = generate(
        WorkloadSpec(
            name="loop", num_macro_ops=800, p_branch=0.1,
            code_footprint_bytes=256, hard_branch_fraction=0.0,
        ),
        seed=0,
    )
    vectors, _ = interval_vectors(workload, 200)
    centroid = vectors.mean(axis=0)
    distances = np.linalg.norm(vectors - centroid, axis=1)
    assert distances.max() < 0.2
