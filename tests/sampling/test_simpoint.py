"""SimPoint selection tests."""

import pytest

from repro.isa.uop import validate_stream
from repro.sampling.simpoint import (
    select_simpoints,
    simpoint_machine,
    weighted_cpi,
)
from repro.workloads.suite import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload("perlbench", 600)


def test_weights_sum_to_one(workload):
    simpoints = select_simpoints(workload, interval_macros=100)
    assert sum(sp.weight for sp in simpoints) == pytest.approx(1.0)


def test_slices_are_valid_workloads(workload):
    for sp in select_simpoints(workload, interval_macros=100):
        validate_stream(sp.workload.uops)
        assert len(sp.workload) > 0


def test_forced_k(workload):
    simpoints = select_simpoints(workload, interval_macros=100, k=3)
    assert len(simpoints) <= 3
    assert len(simpoints) >= 1


def test_indices_are_ordered_and_in_range(workload):
    simpoints = select_simpoints(workload, interval_macros=100)
    indices = [sp.interval_index for sp in simpoints]
    assert indices == sorted(indices)
    assert all(0 <= i < 6 for i in indices)


def test_deterministic(workload):
    a = select_simpoints(workload, interval_macros=100, seed=5)
    b = select_simpoints(workload, interval_macros=100, seed=5)
    assert [sp.interval_index for sp in a] == [sp.interval_index for sp in b]
    assert [sp.weight for sp in a] == [sp.weight for sp in b]


def test_weighted_cpi_combination():
    class FakeSimPoint:
        def __init__(self, weight):
            self.weight = weight

    simpoints = [FakeSimPoint(0.25), FakeSimPoint(0.75)]
    assert weighted_cpi([2.0, 4.0], simpoints) == pytest.approx(3.5)


def test_weighted_cpi_validates_lengths():
    class FakeSimPoint:
        weight = 1.0

    with pytest.raises(ValueError):
        weighted_cpi([1.0, 2.0], [FakeSimPoint()])


def test_homogeneous_workload_collapses_to_few_simpoints(workload):
    simpoints = select_simpoints(workload, interval_macros=100)
    # Statistically uniform stream: BIC should find very few phases.
    assert len(simpoints) <= 3


def test_simpoint_cpi_estimate_close_to_full_run():
    """Weighted simpoint CPI approximates the whole-stream CPI.

    SimPoint's premise is repeating program behaviour, so this uses a
    looping kernel (code footprint much smaller than the stream).  Short
    intervals also carry a pipeline-fill transient, so the interval
    length must amortise it (the paper's 1M-instruction intervals do the
    same at scale).
    """
    from repro.simulator.machine import Machine
    from repro.workloads.generator import WorkloadSpec, generate

    full = generate(
        WorkloadSpec(
            name="loopy", num_macro_ops=1200, p_load=0.25, p_store=0.1,
            p_fp_add=0.1, p_branch=0.12, working_set_bytes=16 * 1024,
            code_footprint_bytes=1024,
        ),
        seed=4,
    )
    full_cpi = Machine(full).simulate().cpi
    simpoints = select_simpoints(full, interval_macros=300)
    cpis = [
        simpoint_machine(full, sp).simulate().cpi for sp in simpoints
    ]
    estimate = weighted_cpi(cpis, simpoints)
    assert estimate == pytest.approx(full_cpi, rel=0.10)
