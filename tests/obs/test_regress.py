"""The noise-aware regression gates, exercised on synthetic series."""

import pytest

from repro.obs.regress import (
    Finding,
    GatePolicy,
    Verdict,
    compare_records,
)
from repro.obs.schema import BenchRecord

ENV = {
    "python": "3.12.0",
    "numpy": "1.26.0",
    "cpu_count": 8,
    "repro_native": "",
    "platform": "linux",
}


def record(samples, stages=None, counters=None, env=None, **overrides):
    base = dict(
        scenario="analyze_cold",
        tier="full",
        created="2026-08-09T00:00:00+00:00",
        scale={"macros": 600},
        repeats=len(samples),
        warmup=1,
        samples=list(samples),
        stages=dict(stages or {}),
        counters=dict(counters or {}),
        env=dict(env or ENV),
    )
    base.update(overrides)
    return BenchRecord(**base)


# ---------------------------------------------------------------------------
# the three-defence total gate
# ---------------------------------------------------------------------------


def test_true_regression_is_detected():
    baseline = record([0.50, 0.52, 0.55])
    current = record([0.80, 0.82, 0.90])  # +60%, +300 ms
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.REGRESSION
    assert finding.failed


def test_pure_jitter_passes_the_gates():
    """Sample noise up to the relative threshold never cries wolf —
    and min-of-N means one slow outlier sample is simply ignored."""
    baseline = record([0.50, 0.58, 0.55])
    current = record([0.56, 1.90, 0.61])  # min 0.56 vs 0.50: +12%
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.OK
    assert not finding.failed


def test_large_relative_but_tiny_absolute_move_is_noise():
    """The absolute floor: a 2x swing on a 3 ms scenario is not news."""
    baseline = record([0.003, 0.004])
    current = record([0.006, 0.007])
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.OK


def test_small_relative_but_large_absolute_move_is_noise():
    """The relative threshold: +100 ms on a 10 s scenario is 1%."""
    baseline = record([10.0, 10.1])
    current = record([10.1, 10.2])
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.OK


def test_improvement_is_reported_not_failed():
    baseline = record([0.80, 0.85])
    current = record([0.40, 0.42])
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.IMPROVEMENT
    assert not finding.failed
    assert "refresh" in finding.detail


def test_missing_baseline():
    finding = compare_records(record([0.5]), None)
    assert finding.verdict is Verdict.MISSING_BASELINE
    assert not finding.failed  # first run cannot fail the build
    assert "update-baseline" in finding.detail


# ---------------------------------------------------------------------------
# stage attribution
# ---------------------------------------------------------------------------


def test_injected_2x_stage_slowdown_is_attributed_by_name():
    """The acceptance scenario: double ONE stage; the finding must name
    it — even when other stages wobble a little."""
    base_stages = {
        "sim.run": 0.10,
        "graph.build": 0.05,
        "stacks.generate": 0.30,
        "cache.load": 0.02,
    }
    slow_stages = dict(base_stages, **{"graph.build": 0.10})  # 2x
    slow_stages["sim.run"] = 0.11  # jitter, below the stage gate
    baseline = record([0.50, 0.52], stages=base_stages)
    current = record(
        [0.56, 0.58], stages=slow_stages
    )  # total +12%: under the total gate
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.REGRESSION
    assert finding.attributed_stage == "graph.build"
    assert "graph.build" in finding.detail
    assert "graph.build" in finding.describe()


@pytest.mark.parametrize(
    "stage",
    ["sim.run", "graph.build", "stacks.generate", "cache.load"],
)
def test_any_single_stage_doubling_is_caught(stage):
    base_stages = {
        "sim.run": 0.10,
        "graph.build": 0.05,
        "stacks.generate": 0.30,
        "cache.load": 0.03,
    }
    slow = dict(base_stages)
    slow[stage] = base_stages[stage] * 2.0
    baseline = record([0.50], stages=base_stages)
    current = record(
        [0.50 + base_stages[stage]], stages=slow
    )
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.REGRESSION
    assert finding.attributed_stage == stage


def test_worst_stage_named_first():
    baseline = record(
        [0.50], stages={"a": 0.10, "b": 0.20}
    )
    current = record(
        [0.95], stages={"a": 0.20, "b": 0.55}
    )
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.REGRESSION
    # b moved +0.35s, a moved +0.10s -> b is the culprit.
    assert finding.attributed_stage == "b"
    assert [d.stage for d in finding.regressed_stages] == ["b", "a"]


def test_stage_jitter_does_not_gate():
    baseline = record([0.50], stages={"sim.run": 0.100})
    current = record([0.52], stages={"sim.run": 0.115})
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.OK


def test_new_stage_without_baseline_entry_is_ignored():
    baseline = record([0.50], stages={"sim.run": 0.1})
    current = record(
        [0.52], stages={"sim.run": 0.1, "brand.new": 0.3}
    )
    assert compare_records(current, baseline).verdict is Verdict.OK


# ---------------------------------------------------------------------------
# comparability guards
# ---------------------------------------------------------------------------


def test_env_fingerprint_mismatch_warn_policy_still_gates():
    other_env = dict(ENV, python="3.11.9")
    baseline = record([0.50])
    current = record([0.90], env=other_env)
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.REGRESSION
    assert finding.env_drift == {"python": ("3.12.0", "3.11.9")}


def test_env_fingerprint_mismatch_strict_policy_skips():
    other_env = dict(ENV, cpu_count=2)
    baseline = record([0.50])
    current = record([0.90], env=other_env)
    policy = GatePolicy(env_policy="strict")
    finding = compare_records(current, baseline, policy)
    assert finding.verdict is Verdict.ENV_MISMATCH
    assert not finding.failed
    assert finding.env_drift == {"cpu_count": (8, 2)}


def test_scale_mismatch_is_incomparable():
    baseline = record([0.50])
    current = record([0.90], scale={"macros": 1200})
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.SCALE_MISMATCH
    assert not finding.failed


def test_tier_mismatch_is_incomparable():
    baseline = record([0.50])
    current = record([0.50], tier="ci")
    assert (
        compare_records(current, baseline).verdict
        is Verdict.SCALE_MISMATCH
    )


def test_digest_drift_fails_in_matching_env():
    baseline = record([0.50], digest="a" * 64)
    current = record([0.50], digest="b" * 64)
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.DIGEST_MISMATCH
    assert finding.failed


def test_digest_not_compared_across_env_drift():
    baseline = record([0.50], digest="a" * 64)
    current = record(
        [0.50], digest="b" * 64, env=dict(ENV, numpy="2.0.1")
    )
    finding = compare_records(current, baseline)
    assert finding.verdict is Verdict.OK
    assert "numpy" in finding.env_drift


def test_counter_drift_is_reported():
    baseline = record([0.50], counters={"trace.materializations": 0})
    current = record([0.50], counters={"trace.materializations": 3})
    finding = compare_records(current, baseline)
    assert finding.counter_drift == {
        "trace.materializations": (0.0, 3.0)
    }
    assert "trace.materializations" in finding.describe()


def test_ci_tier_policy_has_lower_floors():
    policy = GatePolicy.for_tier("ci")
    assert policy.abs_floor_seconds < GatePolicy().abs_floor_seconds
    baseline = record([0.040], tier="ci")
    current = record([0.080], tier="ci")  # 2x, +40 ms
    finding = compare_records(current, baseline, policy)
    assert finding.verdict is Verdict.REGRESSION


def test_finding_describe_mentions_verdict_and_delta():
    finding = Finding(
        scenario="x",
        verdict=Verdict.REGRESSION,
        baseline_seconds=1.0,
        current_seconds=2.0,
    )
    text = finding.describe()
    assert "regression" in text
    assert "+100.0%" in text
