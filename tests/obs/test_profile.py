"""Profile path tests: measure_overhead instrumentation, the Table VI
stage set, and the ``repro profile`` CLI end to end."""

import json

import pytest

from repro.cli import main
from repro.dse.overhead import measure_overhead
from repro.obs.observer import Observer
from repro.obs.report import format_seconds, stage_table
from repro.obs.tracer import load_chrome_trace
from repro.workloads.suite import make_workload

POINTS = dict(eval_points=4, reeval_points=1, segment_length=64)


@pytest.fixture(scope="module")
def profile_and_obs():
    obs = Observer(enabled=True, progress_stream=None)
    workload = make_workload("gamess", 120)
    return measure_overhead(workload, obs=obs, **POINTS), obs


class TestMeasureOverhead:
    def test_stage_breakdown_matches_table_vi(self, profile_and_obs):
        profile, _ = profile_and_obs
        stages = [name for name, _seconds in profile.stage_breakdown()]
        assert stages == [
            "baseline simulation",
            "graph construction",
            "stack generation",
            "per-design evaluation",
        ]

    def test_each_phase_becomes_a_span(self, profile_and_obs):
        _, obs = profile_and_obs
        totals = obs.tracer.totals_by_name()
        for name in (
            "profile.simulate",
            "profile.graph_build",
            "profile.stack_gen",
            "profile.eval",
            "profile.graph_reeval",
        ):
            assert name in totals

    def test_span_and_table_agree(self, profile_and_obs):
        profile, obs = profile_and_obs
        # The span wraps the timed region, so it can only be >= the
        # stage figure (context-manager overhead included).
        span_seconds = obs.tracer.totals_by_name()["profile.simulate"]
        assert span_seconds >= profile.simulate_seconds

    def test_metrics_histograms_populated(self, profile_and_obs):
        _, obs = profile_and_obs
        assert obs.metrics.histogram("profile.simulate_seconds").count == 1
        assert obs.metrics.gauge_value("profile.uops") > 0

    def test_describe_renders_shares(self, profile_and_obs):
        profile, _ = profile_and_obs
        text = profile.describe()
        assert "one-off analysis breakdown" in text
        assert "baseline simulation" in text
        assert "%" in text
        assert "crossover" in text


class TestReportHelpers:
    def test_format_seconds_scales_units(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0125) == "12.50 ms"
        assert format_seconds(4.2e-6) == "4.20 us"
        assert format_seconds(3e-9) == "3.0 ns"

    def test_stage_table_shares_sum_to_total(self):
        table = stage_table([("a", 3.0), ("b", 1.0)])
        assert "75.0%" in table
        assert "25.0%" in table
        assert "total" in table


class TestProfileCli:
    def run(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_prints_stage_table(self, capsys):
        code, out = self.run(
            capsys, "profile", "gamess", "--macros", "120",
            "--eval-points", "4", "--reeval-points", "1",
            "--segment-length", "64",
        )
        assert code == 0
        assert "baseline simulation" in out
        assert "per-design evaluation" in out
        assert "span rollup" in out

    def test_trace_out_is_perfetto_loadable(self, capsys, tmp_path):
        trace = tmp_path / "profile-trace.json"
        code, out = self.run(
            capsys, "profile", "gamess", "--macros", "120",
            "--eval-points", "4", "--reeval-points", "1",
            "--segment-length", "64", "--trace-out", str(trace),
        )
        assert code == 0
        assert str(trace) in out
        events = load_chrome_trace(trace)
        names = {event["name"] for event in events}
        assert "profile.simulate" in names
        # Perfetto-required fields on every complete event.
        for event in events:
            if event["ph"] == "X":
                assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}

    def test_json_payload(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        code, out = self.run(
            capsys, "profile", "gamess", "--macros", "120",
            "--eval-points", "4", "--reeval-points", "1",
            "--segment-length", "64", "--json",
            "--metrics-json", str(metrics),
        )
        assert code == 0
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["workload_name"] == "gamess"
        stage_names = [stage["stage"] for stage in payload["stages"]]
        assert "baseline simulation" in stage_names
        snapshot = json.loads(metrics.read_text())
        assert "profile.simulate_seconds" in snapshot["histograms"]
