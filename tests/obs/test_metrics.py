"""Metrics registry tests: instruments, percentiles, export/merge."""

import json
import pickle

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("cache.hit").inc()
        registry.counter("cache.hit").inc(4)
        assert registry.counter_value("cache.hit") == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("front").set(10)
        registry.gauge("front").set(3)
        assert registry.gauge_value("front") == 3

    def test_missing_reads_return_defaults(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nope") == 0
        assert registry.gauge_value("nope", default=-1.0) == -1.0

    def test_create_on_touch_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogramPercentiles:
    def test_exact_percentiles_on_known_data(self):
        h = Histogram("t")
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            h.observe(value)
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 3.0
        assert h.percentile(100) == 5.0
        # Linear interpolation: rank 3.8 between 4.0 and 5.0.
        assert h.percentile(95) == pytest.approx(4.8)

    def test_single_value(self):
        h = Histogram("t")
        h.observe(7.5)
        for q in (0, 50, 95, 100):
            assert h.percentile(q) == 7.5

    def test_empty_histogram_is_zero(self):
        h = Histogram("t")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        assert h.max == 0.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t").percentile(101)

    def test_summary_fields(self):
        h = Histogram("t")
        for value in [2.0, 4.0]:
            h.observe(value)
        summary = h.summary()
        assert summary == {
            "count": 2, "sum": 6.0, "mean": 3.0, "min": 2.0,
            "max": 4.0, "p50": 3.0, "p95": pytest.approx(3.9),
        }


class TestSnapshotExportMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("front").set(12)
        registry.histogram("chunk").observe(0.5)
        registry.histogram("chunk").observe(1.5)
        return registry

    def test_snapshot_shape(self):
        snapshot = self._populated().snapshot()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"front": 12}
        assert snapshot["histograms"]["chunk"]["count"] == 2
        assert snapshot["histograms"]["chunk"]["p50"] == 1.0

    def test_merge_adds_counters_and_extends_histograms(self):
        parent = self._populated()
        worker = MetricsRegistry()
        worker.counter("hits").inc(2)
        worker.gauge("front").set(99)
        worker.histogram("chunk").observe(2.5)
        parent.merge(worker.export())
        assert parent.counter_value("hits") == 5
        assert parent.gauge_value("front") == 99
        assert parent.histogram("chunk").values == [0.5, 1.5, 2.5]
        # Percentiles computed over the concatenated observations.
        assert parent.histogram("chunk").percentile(50) == 1.5

    def test_merge_tolerates_summary_form_and_none(self):
        registry = MetricsRegistry()
        registry.merge(None)
        registry.merge({"histograms": {"h": {"count": 3, "mean": 2.0}}})
        assert registry.histogram("h").values == [2.0, 2.0, 2.0]

    def test_registry_pickles_without_its_lock(self):
        clone = pickle.loads(pickle.dumps(self._populated()))
        assert clone.counter_value("hits") == 3
        clone.counter("hits").inc()  # the rebuilt lock works
        assert clone.counter_value("hits") == 4

    def test_write_is_valid_json(self, tmp_path):
        path = self._populated().write(tmp_path / "m.json")
        payload = json.loads(path.read_text())
        assert payload["counters"]["hits"] == 3
