"""The bench harness: protocol, registry, and the `repro bench` CLI."""

import gc
import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    Scenario,
    ScenarioRun,
    env_fingerprint,
    get_scenario,
    measure,
    run_scenario,
    scenario_names,
)
from repro.obs.observer import get_observer
from repro.obs.schema import TrajectoryFile, trajectory_path

#: The seven scenarios the issue names — the committed headline numbers.
ISSUE_SCENARIOS = {
    "analyze_cold",
    "analyze_warm",
    "simulate_native",
    "simulate_python",
    "trace_columns",
    "generate_jobs8",
    "dse_sweep_throughput",
}


def _toy_scenario(name="toy", digests=None, spans=("stage.a", "stage.b")):
    """A microscopic scenario: spins through ambient spans and returns
    per-rep digests from the given sequence (constant by default)."""
    state = {"rep": 0}
    digests = digests or ["d0"]

    def recipe(scale):
        def body():
            obs = get_observer()
            for span in spans:
                with obs.span(span):
                    sum(range(scale["n"]))
            obs.counter("toy.calls").inc()

        def digest():
            value = digests[min(state["rep"], len(digests) - 1)]
            state["rep"] += 1
            return value

        return body, digest

    return Scenario(
        name=name,
        title="toy scenario",
        recipe=recipe,
        scales={"full": {"n": 5000}, "ci": {"n": 500}},
        repeats=3,
        warmup=1,
    )


class TestMeasure:
    def test_returns_elapsed_and_restores_gc(self):
        assert gc.isenabled()
        seen = {}
        seconds = measure(lambda: seen.setdefault("gc", gc.isenabled()))
        assert seconds >= 0.0
        assert seen["gc"] is False  # GC paused inside the timed body
        assert gc.isenabled()  # ... and restored afterwards

    def test_restores_gc_on_exception(self):
        with pytest.raises(RuntimeError):
            measure(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert gc.isenabled()


class TestRegistry:
    def test_issue_scenarios_are_registered(self):
        assert ISSUE_SCENARIOS <= set(scenario_names())
        assert len(scenario_names()) >= 7

    def test_unknown_scenario_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does_not_exist")

    def test_every_scenario_has_both_tiers(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert set(scenario.scales) == {"full", "ci"}, name

    def test_env_override_wins(self, monkeypatch):
        scenario = get_scenario("analyze_cold")
        monkeypatch.setenv("REPRO_BENCH_ANALYZE_MACROS", "123")
        assert scenario.resolve_scale("ci")["macros"] == 123
        monkeypatch.delenv("REPRO_BENCH_ANALYZE_MACROS")
        assert scenario.resolve_scale("ci")["macros"] != 123


class TestRunScenario:
    def test_protocol_produces_a_complete_record(self):
        record = run_scenario(_toy_scenario(), tier="ci")
        assert record.scenario == "toy"
        assert record.tier == "ci"
        assert record.scale == {"n": 500}
        assert len(record.samples) == 3  # repeats, warmup excluded
        assert record.repeats == 3 and record.warmup == 1
        # Span-level attribution from the fastest rep's tracer.
        assert set(record.stages) >= {"stage.a", "stage.b"}
        assert record.counters.get("toy.calls") == 1
        assert record.digest == "d0"
        assert record.env["python"] == env_fingerprint()["python"]
        assert record.created  # ISO stamp present

    def test_digest_disagreement_across_reps_raises(self):
        scenario = _toy_scenario(digests=["a", "a", "b", "c"])
        with pytest.raises(ScenarioRun, match="distinct result digests"):
            run_scenario(scenario, tier="ci")

    def test_repeats_must_be_positive(self):
        with pytest.raises(ScenarioRun, match="repeats"):
            run_scenario(_toy_scenario(), tier="ci", repeats=0)

    def test_progress_callback_narrates(self):
        lines = []
        run_scenario(
            _toy_scenario(),
            tier="ci",
            repeats=1,
            warmup=1,
            progress=lines.append,
        )
        assert any("setup" in line for line in lines)
        assert any("warmup" in line for line in lines)
        assert any("timed" in line for line in lines)


@pytest.fixture
def fast_bench_env(monkeypatch):
    """Shrink the cheapest real scenario so CLI tests stay quick."""
    monkeypatch.setenv("REPRO_BENCH_SIMULATE_PY_MACROS", "80")


class TestBenchCli:
    def _run_cli(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_run_writes_schema_valid_trajectory(
        self, capsys, tmp_path, fast_bench_env
    ):
        code, out = self._run_cli(
            capsys,
            "bench", "run", "simulate_python",
            "--tier", "ci", "--dir", str(tmp_path),
            "--repeats", "2", "--warmup", "0",
        )
        assert code == 0
        path = trajectory_path(tmp_path, "simulate_python")
        assert path.exists()
        # Plain JSON on disk, schema-valid on load.
        json.loads(path.read_text())
        trajectory = TrajectoryFile.load(path)
        record = trajectory.latest_run("ci")
        assert record.scale == {"macros": 80}
        assert "sim.run" in record.stages
        assert "simulate_python[ci]" in out

    def test_compare_back_to_back_passes_gates(
        self, capsys, tmp_path, fast_bench_env
    ):
        code, _ = self._run_cli(
            capsys,
            "bench", "run", "simulate_python",
            "--tier", "ci", "--dir", str(tmp_path),
            "--repeats", "2", "--warmup", "0", "--update-baseline",
        )
        assert code == 0
        for _ in range(2):  # twice back-to-back: noise gates must hold
            code, out = self._run_cli(
                capsys,
                "bench", "compare", "simulate_python",
                "--tier", "ci", "--dir", str(tmp_path),
                "--repeats", "2", "--warmup", "0",
            )
            assert code == 0, out
            assert "all gates passed" in out

    def test_compare_detects_and_attributes_injected_slowdown(
        self, capsys, tmp_path
    ):
        # Full ci scale (not the shrunken fixture): the noise floors are
        # calibrated for it, so a genuine 2x stage slowdown must clear
        # them while the back-to-back test above stays quiet.
        self._run_cli(
            capsys,
            "bench", "run", "simulate_python",
            "--tier", "ci", "--dir", str(tmp_path),
            "--repeats", "2", "--warmup", "0", "--update-baseline",
        )
        # Inject an exact 2x slowdown into one stage by halving the
        # committed baseline's numbers for that stage, then gate the
        # *same stored run* (--latest): no second measurement, so the
        # injected ratio is precisely 2.0 regardless of machine load.
        path = trajectory_path(tmp_path, "simulate_python")
        trajectory = TrajectoryFile.load(path)
        baseline = trajectory.baseline_for("ci")
        baseline.stages["sim.run"] /= 2.0
        baseline.samples = [s / 2.0 for s in baseline.samples]
        trajectory.set_baseline(baseline)
        trajectory.save(path)
        code, out = self._run_cli(
            capsys,
            "bench", "compare", "simulate_python", "--latest",
            "--tier", "ci", "--dir", str(tmp_path),
        )
        assert code == 1
        assert "regression" in out
        assert "sim.run" in out  # attributed to the stage by name

    def test_report_renders_markdown_table(
        self, capsys, tmp_path, fast_bench_env
    ):
        self._run_cli(
            capsys,
            "bench", "run", "simulate_python",
            "--tier", "ci", "--dir", str(tmp_path),
            "--repeats", "2", "--warmup", "0", "--update-baseline",
        )
        code, out = self._run_cli(
            capsys,
            "bench", "report", "--tier", "ci",
            "--dir", str(tmp_path), "--markdown",
        )
        assert code == 0
        assert "| Scenario |" in out
        assert "| simulate_python |" in out
        assert "generated by `repro bench report" in out

    def test_report_without_trajectories_fails(self, capsys, tmp_path):
        code, out = self._run_cli(
            capsys, "bench", "report", "--dir", str(tmp_path)
        )
        assert code == 1
        assert "no BENCH_" in out

    def test_run_requires_scenarios_or_all(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="--all"):
            main(["bench", "run", "--dir", str(tmp_path)])
