"""Observer facade tests: null fast path, ambient scoping, env toggles."""

import io

from repro.obs import observer as obs_mod
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    from_env,
    get_observer,
    use_observer,
)
from repro.obs.tracer import Tracer


class TestNullFastPath:
    def test_disabled_calls_return_shared_singletons(self):
        disabled = Observer(enabled=False)
        assert disabled.span("x") is disabled.span("y")
        assert disabled.counter("a") is disabled.counter("b")
        assert disabled.counter("a") is disabled.histogram("h")
        # All null operations are inert and chainable.
        with disabled.span("x") as span:
            span.set(k=1)
        disabled.counter("a").inc(5)
        disabled.gauge("g").set(3)
        disabled.histogram("h").observe(0.1)
        disabled.event("e")
        disabled.record("r", 0, 100)
        disabled.progress("nope")

    def test_disabled_allocates_no_collectors(self):
        disabled = Observer(enabled=False)
        assert disabled.tracer is None
        assert disabled.metrics is None

    def test_null_observer_is_module_default(self):
        assert get_observer() is NULL_OBSERVER


class TestEnabledRecording:
    def test_span_and_metrics_flow_into_collectors(self):
        obs = Observer(enabled=True, progress_stream=None)
        with obs.span("stage", workload="w"):
            obs.counter("touched").inc()
        assert obs.tracer.spans[0].name == "stage"
        assert obs.metrics.counter_value("touched") == 1

    def test_progress_prints_and_traces(self):
        stream = io.StringIO()
        obs = Observer(enabled=True, progress_stream=stream)
        obs.progress("sweep: 3/10 chunks", chunks=3)
        assert "sweep: 3/10 chunks" in stream.getvalue()
        events = obs.tracer.export_events()
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["args"]["message"] == "sweep: 3/10 chunks"

    def test_absorb_merges_worker_payloads(self):
        obs = Observer(enabled=True, progress_stream=None)
        worker_tracer = Tracer()
        with worker_tracer.span("task.w"):
            pass
        obs.absorb(
            events=worker_tracer.export_events(),
            metrics={"counters": {"sweep.points": 10}},
        )
        assert obs.metrics.counter_value("sweep.points") == 10
        assert "task.w" in obs.tracer.totals_by_name()

    def test_finish_writes_configured_outputs(self, tmp_path):
        obs = Observer(
            enabled=True,
            trace_out=str(tmp_path / "t.json"),
            metrics_out=str(tmp_path / "m.json"),
            progress_stream=None,
        )
        with obs.span("x"):
            pass
        written = obs.finish()
        assert len(written) == 2
        assert (tmp_path / "t.json").exists()
        assert (tmp_path / "m.json").exists()

    def test_finish_on_disabled_writes_nothing(self, tmp_path):
        disabled = Observer(enabled=False, trace_out=str(tmp_path / "t.json"))
        assert disabled.finish() == []
        assert not (tmp_path / "t.json").exists()


class TestAmbientScoping:
    def test_use_observer_installs_and_restores(self):
        before = get_observer()
        scoped = Observer(enabled=True, progress_stream=None)
        with use_observer(scoped) as active:
            assert active is scoped
            assert get_observer() is scoped
        assert get_observer() is before

    def test_use_observer_restores_on_exception(self):
        before = get_observer()
        try:
            with use_observer(Observer(enabled=True, progress_stream=None)):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_observer() is before

    def test_use_observer_none_keeps_current_ambient(self):
        outer = Observer(enabled=True, progress_stream=None)
        with use_observer(outer):
            with use_observer(None) as active:
                assert active is outer


class TestFromEnv:
    def test_unset_environment_yields_null(self):
        assert from_env(environ={}) is NULL_OBSERVER

    def test_trace_out_enables(self, tmp_path):
        obs = from_env(environ={"REPRO_TRACE_OUT": str(tmp_path / "t.json")})
        assert obs.enabled
        assert obs.trace_out == str(tmp_path / "t.json")

    def test_flag_enables_without_outputs(self):
        for flag in ("1", "true", "ON"):
            obs = from_env(environ={"REPRO_OBS": flag})
            assert obs.enabled
            assert obs.trace_out is None

    def test_falsey_flag_stays_null(self):
        assert from_env(environ={"REPRO_OBS": "0"}) is NULL_OBSERVER
        assert from_env(environ={"REPRO_TRACE_OUT": ""}) is NULL_OBSERVER
