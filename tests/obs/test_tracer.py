"""Tracer unit tests: nesting, IDs, merging, Chrome-JSON round trip."""

import json
import threading

from repro.obs.tracer import Tracer, load_chrome_trace


class TestSpans:
    def test_span_records_name_attrs_and_duration(self):
        tracer = Tracer()
        with tracer.span("graph.build", workload="gamess") as ctx:
            ctx.set(nodes=13)
        (span,) = tracer.spans
        assert span.name == "graph.build"
        assert span.attrs["workload"] == "gamess"
        assert span.attrs["nodes"] == 13
        assert span.duration_ns >= 0
        assert span.start_wall_ns > 0

    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert inner.span.parent_id == middle.span.span_id
        assert middle.span.parent_id == outer.span.span_id
        assert outer.span.parent_id is None
        assert tracer.depth_of(inner.span) == 2
        assert tracer.depth_of(outer.span) == 0

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.span.parent_id == parent.span.span_id
        assert second.span.parent_id == parent.span.span_id

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise ValueError("nope")
        except ValueError:
            pass
        (span,) = tracer.spans
        assert span.attrs["error"] == "ValueError"
        # The stack unwound: a new span is again a root.
        with tracer.span("fresh") as fresh:
            pass
        assert fresh.span.parent_id is None

    def test_ids_unique_across_threads(self):
        tracer = Tracer()
        seen = []

        def work():
            for _ in range(50):
                with tracer.span("worker"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seen = [span.span_id for span in tracer.spans]
        assert len(seen) == 200
        assert len(set(seen)) == 200

    def test_record_logs_premeasured_interval(self):
        tracer = Tracer()
        tracer.record("sweep.chunk", 1_000_000_000, 250_000, start=0)
        (span,) = tracer.spans
        assert span.duration_ns == 250_000
        assert span.start_wall_ns == 1_000_000_000

    def test_totals_by_name_sums_durations(self):
        tracer = Tracer()
        tracer.record("a", 0, 1_000_000_000)
        tracer.record("a", 0, 500_000_000)
        tracer.record("b", 0, 250_000_000)
        totals = tracer.totals_by_name()
        assert totals["a"] == 1.5
        assert totals["b"] == 0.25


class TestChromeExport:
    def test_round_trip_through_perfetto_schema(self, tmp_path):
        tracer = Tracer()
        with tracer.span("analyze", workload="gamess"):
            with tracer.span("sim.run"):
                pass
        tracer.instant("progress", message="halfway")
        path = tracer.write(tmp_path / "trace.json")
        events = load_chrome_trace(path)
        names = {event["name"] for event in events}
        assert {"analyze", "sim.run", "progress"} <= names
        complete = [e for e in events if e["ph"] == "X"]
        assert all("dur" in e for e in complete)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["args"]["message"] == "halfway"

    def test_document_shape_is_chrome_trace(self, tmp_path):
        tracer = Tracer(process_name="unit")
        with tracer.span("x"):
            pass
        path = tracer.write(tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        metadata = [
            e for e in document["traceEvents"] if e.get("ph") == "M"
        ]
        assert metadata[0]["args"]["name"] == "unit"

    def test_loader_accepts_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([
            {"name": "x", "ph": "X", "ts": 1.0, "dur": 2.0,
             "pid": 1, "tid": 1},
        ]))
        events = load_chrome_trace(path)
        assert events[0]["name"] == "x"

    def test_loader_rejects_schema_drift(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"name": "x", "ph": "X", "ts": 1.0}]))
        try:
            load_chrome_trace(path)
        except ValueError as error:
            assert "missing required field" in str(error)
        else:
            raise AssertionError("schema violation not caught")

    def test_merged_foreign_events_survive_export(self, tmp_path):
        parent = Tracer()
        worker = Tracer()
        with worker.span("task.0"):
            pass
        parent.add_events(worker.export_events())
        with parent.span("suite.run"):
            pass
        path = parent.write(tmp_path / "merged.json")
        names = {event["name"] for event in load_chrome_trace(path)}
        assert {"task.0", "suite.run"} <= names
