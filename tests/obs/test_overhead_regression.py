"""Regression guard: disabled instrumentation must stay effectively free.

The acceptance bar is <2% overhead on a small ``sweep_space`` run with
instrumentation disabled.  A naive A/B wall-clock comparison is flaky in
shared CI (noise easily exceeds 2%), so the bound is computed
deterministically instead: measure the cost of one no-op touch with
``timeit``, multiply by the number of touches the sweep's hot loop makes
(one ``obs.enabled`` check per chunk plus the constant per-call span
overhead), and compare against the sweep's measured wall time.  The
product overstates the true overhead — the disabled path is a hoisted
boolean, not a full null-span round trip per chunk — so passing here
means the real figure is far below the bar.
"""

import timeit

import numpy as np

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.designspace import DesignSpace
from repro.dse.sweep import sweep_space
from repro.obs import clock
from repro.obs.observer import NULL_OBSERVER, Observer, get_observer


def _vec(**units):
    out = np.zeros(NUM_EVENTS)
    for name, value in units.items():
        out[EventType[name]] = value
    return out


def _small_setup():
    seg0 = np.stack([_vec(FP_ADD=4, BASE=10), _vec(L1D=5, LD=2, BASE=8)])
    seg1 = np.stack([_vec(MEM_D=1, BASE=6), _vec(L2D=7, BASE=20)])
    model = RpStacksModel([seg0, seg1], baseline=LatencyConfig(), num_uops=100)
    space = DesignSpace.from_mapping(
        {
            EventType.L1D: [1, 2, 3, 4],
            EventType.FP_ADD: [1, 2, 4, 6],
            EventType.MEM_D: [33, 66, 133],
            EventType.L2D: [3, 6, 12],
        }
    )
    return model, space


CHUNK_SIZE = 8  # 144 points -> 18 chunks: plenty of hot-loop iterations.


def test_disabled_instrumentation_under_two_percent():
    model, space = _small_setup()
    assert get_observer() is NULL_OBSERVER

    # Wall time of the real (disabled-observer) sweep, best of three to
    # shave scheduler noise off the denominator.
    sweep_seconds = min(
        _timed_sweep(model, space) for _ in range(3)
    )

    # Cost of one disabled touch: the ambient lookup, the flag check and
    # a full null-span enter/exit — strictly more work than the hoisted
    # `if obs.enabled:` the hot loop actually performs.
    disabled = Observer(enabled=False)
    repeat = 10_000
    per_touch = (
        timeit.timeit(
            lambda: disabled.enabled and None, number=repeat
        )
        / repeat
    )
    per_span = (
        timeit.timeit(
            lambda: disabled.span("x").__exit__(None, None, None),
            number=repeat,
        )
        / repeat
    )

    num_chunks = -(-space.num_points // CHUNK_SIZE)
    # Per sweep: one ambient resolve + two null spans at the top level,
    # and one enabled-check per chunk (the hoisted hot-loop touch).
    modelled_overhead = 3 * per_span + num_chunks * per_touch

    ratio = modelled_overhead / sweep_seconds
    assert ratio < 0.02, (
        f"disabled instrumentation modelled at {ratio:.2%} of a "
        f"{sweep_seconds * 1e3:.1f} ms sweep (bar: 2%)"
    )


def _timed_sweep(model, space):
    tick = clock.perf_seconds()
    sweep_space(model, space, chunk_size=CHUNK_SIZE)
    return clock.perf_seconds() - tick


def test_disabled_sweep_records_nothing():
    model, space = _small_setup()
    result = sweep_space(model, space, chunk_size=CHUNK_SIZE)
    assert NULL_OBSERVER.tracer is None  # nothing was allocated
    assert result.metrics.num_chunks > 0  # run record still populated


def test_enabled_sweep_collects_chunk_histogram():
    model, space = _small_setup()
    obs = Observer(enabled=True, progress_stream=None)
    sweep_space(model, space, chunk_size=CHUNK_SIZE, obs=obs)
    histogram = obs.metrics.histogram("sweep.chunk_seconds")
    assert histogram.count == -(-space.num_points // CHUNK_SIZE)
    assert obs.metrics.counter_value("sweep.points") == space.num_points
    assert "sweep.run" in obs.tracer.totals_by_name()
    assert "sweep.chunk" in obs.tracer.totals_by_name()
