"""Schema round-trip properties for the BENCH_<scenario>.json store."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.regress import Verdict, compare_records
from repro.obs.schema import (
    MAX_RUNS,
    SCHEMA_VERSION,
    BenchRecord,
    BenchSchemaError,
    TrajectoryFile,
    trajectory_path,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_.", min_size=1, max_size=20
)
_seconds = st.floats(
    min_value=1e-6, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def bench_records(draw):
    return BenchRecord(
        scenario=draw(_names),
        tier=draw(st.sampled_from(["full", "ci"])),
        created="2026-08-09T00:00:00+00:00",
        scale=draw(
            st.dictionaries(
                _names, st.integers(1, 10**6), max_size=3
            )
        ),
        repeats=draw(st.integers(1, 10)),
        warmup=draw(st.integers(0, 3)),
        samples=draw(st.lists(_seconds, min_size=1, max_size=8)),
        stages=draw(st.dictionaries(_names, _seconds, max_size=5)),
        counters=draw(
            st.dictionaries(
                _names, st.floats(0, 1e9, allow_nan=False), max_size=5
            )
        ),
        aux=draw(
            st.dictionaries(
                _names, st.floats(0, 1e9, allow_nan=False), max_size=3
            )
        ),
        digest=draw(st.none() | st.text("0123456789abcdef", min_size=8,
                                        max_size=16)),
        env=draw(
            st.dictionaries(
                _names,
                st.none() | st.integers(0, 64) | _names,
                max_size=4,
            )
        ),
    )


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(bench_records())
def test_record_roundtrip_is_identity(record):
    clone = BenchRecord.from_dict(
        json.loads(json.dumps(record.to_dict()))
    )
    assert clone == record


@settings(max_examples=60, deadline=None)
@given(bench_records())
def test_roundtrip_then_compare_to_self_is_ok(record):
    """serialize -> load -> compare against itself is the identity gate:
    verdict OK, zero delta, no stage attribution, no drift."""
    clone = BenchRecord.from_dict(record.to_dict())
    finding = compare_records(clone, record)
    assert finding.verdict is Verdict.OK
    assert finding.regressed_stages == []
    assert finding.env_drift == {}
    assert finding.counter_drift == {}


@settings(max_examples=40, deadline=None)
@given(
    bench_records(),
    st.dictionaries(
        st.sampled_from(
            ["flux_capacitance", "note", "rev9_field", "qux"]
        ),
        st.none() | st.integers(0, 99) | st.text(max_size=10),
        max_size=3,
    ),
)
def test_unknown_future_fields_are_tolerated_and_preserved(
    record, future_fields
):
    data = record.to_dict()
    data.update(future_fields)
    loaded = BenchRecord.from_dict(data)
    # Unknown keys ride along in extras and re-serialise verbatim.
    for key, value in future_fields.items():
        assert loaded.extras[key] == value
        assert loaded.to_dict()[key] == value
    # And they never break the gates.
    assert compare_records(loaded, loaded).verdict is Verdict.OK


def _record(**overrides):
    base = dict(
        scenario="analyze_cold",
        tier="full",
        created="2026-08-09T00:00:00+00:00",
        scale={"macros": 600},
        repeats=3,
        warmup=1,
        samples=[0.3, 0.31, 0.32],
        stages={"sim.run": 0.1, "stacks.generate": 0.2},
        digest="abc123",
        env={"python": "3.12.0"},
    )
    base.update(overrides)
    return BenchRecord(**base)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def test_newer_schema_version_is_rejected():
    data = _record().to_dict()
    data["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(BenchSchemaError, match="newer"):
        BenchRecord.from_dict(data)


def test_missing_samples_rejected():
    data = _record().to_dict()
    data["samples"] = []
    with pytest.raises(BenchSchemaError, match="no timing samples"):
        BenchRecord.from_dict(data)


def test_missing_required_field_rejected():
    data = _record().to_dict()
    del data["scenario"]
    with pytest.raises(BenchSchemaError, match="scenario"):
        BenchRecord.from_dict(data)


def test_derived_statistics():
    record = _record(samples=[0.4, 0.2, 0.3])
    assert record.min_seconds == pytest.approx(0.2)
    assert record.median_seconds == pytest.approx(0.3)
    assert record.spread == pytest.approx(1.0)
    shares = record.stage_shares()
    assert shares["sim.run"] == pytest.approx(0.5)
    assert shares["stacks.generate"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# trajectory files
# ---------------------------------------------------------------------------


def test_trajectory_save_load_roundtrip(tmp_path):
    trajectory = TrajectoryFile(scenario="analyze_cold")
    record = _record()
    trajectory.append(record)
    trajectory.set_baseline(record)
    path = trajectory_path(tmp_path, "analyze_cold")
    trajectory.save(path)
    assert path.name == "BENCH_analyze_cold.json"

    loaded = TrajectoryFile.load(path)
    assert loaded.scenario == "analyze_cold"
    assert loaded.baseline_for("full") == record
    assert loaded.latest_run() == record
    assert loaded.baseline_for("ci") is None


def test_trajectory_rejects_foreign_records(tmp_path):
    trajectory = TrajectoryFile(scenario="analyze_cold")
    with pytest.raises(BenchSchemaError):
        trajectory.append(_record(scenario="other"))
    with pytest.raises(BenchSchemaError):
        trajectory.set_baseline(_record(scenario="other"))


def test_trajectory_caps_run_history():
    trajectory = TrajectoryFile(scenario="analyze_cold")
    for index in range(MAX_RUNS + 7):
        trajectory.append(_record(samples=[0.1 + index * 1e-6]))
    assert len(trajectory.runs) == MAX_RUNS
    # Oldest dropped, newest kept.
    assert trajectory.runs[-1].samples[0] == pytest.approx(
        0.1 + (MAX_RUNS + 6) * 1e-6
    )


def test_trajectory_open_fresh_and_existing(tmp_path):
    fresh = TrajectoryFile.open(tmp_path, "analyze_cold")
    assert fresh.runs == [] and fresh.baselines == {}
    fresh.append(_record())
    fresh.save(trajectory_path(tmp_path, "analyze_cold"))
    again = TrajectoryFile.open(tmp_path, "analyze_cold")
    assert len(again.runs) == 1


def test_trajectory_load_rejects_bad_json(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text("{not json")
    with pytest.raises(BenchSchemaError, match="not valid JSON"):
        TrajectoryFile.load(path)
