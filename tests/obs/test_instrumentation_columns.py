"""Observability of the columnar paths: spans and counters added so the
record-materialisation tax and format-version mix stay visible."""

from repro.graphmodel.builder import build_graph
from repro.obs.observer import Observer, use_observer
from repro.simulator.machine import Machine
from repro.simulator.traceio import load_result, save_result
from repro.workloads.suite import make_workload


def _result():
    return Machine(make_workload("gamess", 60)).simulate()


def test_materialisation_emits_span_and_counter():
    result = _result()
    obs = Observer(enabled=True)
    with use_observer(obs):
        result.columns.to_records()
        result.columns.to_records()
    assert obs.metrics.counter_value("trace.materializations") == 2
    totals = obs.tracer.totals_by_name()
    assert totals.get("columns.materialize", 0.0) > 0.0


def test_graph_build_emits_columns_span():
    result = _result()
    obs = Observer(enabled=True)
    with use_observer(obs):
        build_graph(result)
    totals = obs.tracer.totals_by_name()
    assert "graph.build" in totals
    assert "graph.build_columns" in totals
    # The columnar builder runs inside the graph.build umbrella span.
    assert totals["graph.build_columns"] <= totals["graph.build"] + 1e-9


def test_traceio_load_counts_format_version(tmp_path):
    result = _result()
    path = tmp_path / "trace.npz"
    save_result(result, path)
    obs = Observer(enabled=True)
    with use_observer(obs):
        load_result(path)
        load_result(path)
    assert obs.metrics.counter_value("traceio.loads.v2") == 2
    assert obs.metrics.counter_value("traceio.loads.v1") == 0


def test_disabled_observer_keeps_paths_silent():
    result = _result()
    # NULL path: no registry, no tracer — must simply not crash.
    records = result.columns.to_records()
    assert records
