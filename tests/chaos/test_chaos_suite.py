"""Chaos acceptance: the 12-workload suite survives injected faults.

Workers raise transient errors or SIGKILL themselves mid-suite; with a
retry policy the run must still complete, the faulted workloads must
succeed on a later attempt, and a workload that *keeps* failing must
degrade into a partial report with the dedicated exit code instead of
sinking the suite.

The fault seed comes from ``REPRO_CHAOS_SEED`` when set (the CI
chaos-smoke matrix), otherwise both CI seeds run locally.
"""

import os

import pytest

from repro.runtime import (
    EXIT_OK,
    EXIT_PARTIAL_FAILURE,
    RetryPolicy,
    run_suite,
)
from repro.workloads.suite import suite_names
from tests.chaos import faults

_ENV_SEED = os.environ.get("REPRO_CHAOS_SEED")
SEEDS = [int(_ENV_SEED)] if _ENV_SEED else [101, 202]

#: Small enough that a 12-workload suite with retries stays fast.
MACROS = 60


def _arm(plan, tmp_path, monkeypatch):
    for key, value in faults.arm(plan, tmp_path / "chaos").items():
        monkeypatch.setenv(key, value)


@pytest.mark.parametrize("chaos_seed", SEEDS)
def test_suite_survives_injected_faults(tmp_path, monkeypatch, chaos_seed):
    """The headline drill: transient raises + worker SIGKILLs across the
    full canonical suite, jobs > 1, everything completes."""
    names = suite_names()
    assert len(names) == 12
    plan = faults.make_plan(
        chaos_seed, names, kinds=("raise", "sigkill"), fraction=0.25
    )
    _arm(plan, tmp_path, monkeypatch)
    # max_attempts exceeds the worst-case pool-break count (every victim
    # a SIGKILL), so an innocent workload charged by each break can
    # never exhaust its budget.
    retry = RetryPolicy(
        max_attempts=len(plan) + 1,
        base_delay=0.01,
        max_delay=0.05,
        seed=chaos_seed,
    )
    report = run_suite(
        names=names,
        macros=MACROS,
        jobs=3,
        retry=retry,
        workload_factory=faults.chaos_workload,
        cache=tmp_path / "cache",
    )
    assert len(report) == len(names)
    assert not report.failed
    assert report.exit_code == EXIT_OK
    # Every victim needed (and got) more than one attempt.
    attempts = {o.name: o.attempts for o in report}
    for victim in plan:
        assert attempts[victim] > 1, (victim, attempts)


def test_exhausted_retries_degrade_to_partial_report(
    tmp_path, monkeypatch
):
    """A workload that fails every attempt yields a failed outcome in an
    otherwise complete report — graceful degradation, exit code 3."""
    names = list(suite_names())[:4]
    victim = names[1]
    _arm(
        {victim: {"kind": "raise", "attempts": 99}}, tmp_path, monkeypatch
    )
    retry = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02)
    report = run_suite(
        names=names,
        macros=MACROS,
        jobs=2,
        retry=retry,
        workload_factory=faults.chaos_workload,
    )
    assert [o.name for o in report.failed] == [victim]
    assert len(report.succeeded) == len(names) - 1
    assert report.exit_code == EXIT_PARTIAL_FAILURE
    failed = report.failed[0]
    assert failed.attempts == retry.max_attempts
    assert "ChaosError" in (failed.error or "")
    assert "FAILED" in report.describe()


def test_suite_resume_skips_journalled_workloads(tmp_path, monkeypatch):
    """Crash drill for the journal: a first run with one hopeless
    workload journals the survivors; after the fault clears, ``resume``
    reloads them through the cache and only re-runs the failure."""
    names = list(suite_names())[:4]
    victim = names[2]
    _arm(
        {victim: {"kind": "raise", "attempts": 99}}, tmp_path, monkeypatch
    )
    journal = tmp_path / "suite.journal.json"
    cache = tmp_path / "cache"
    first = run_suite(
        names=names,
        macros=MACROS,
        jobs=2,
        cache=cache,
        checkpoint=journal,
        workload_factory=faults.chaos_workload,
    )
    assert first.exit_code == EXIT_PARTIAL_FAILURE
    assert journal.exists()

    # The fault zone ends: re-arm with an empty plan and resume.
    _arm({}, tmp_path / "clear", monkeypatch)
    second = run_suite(
        names=names,
        macros=MACROS,
        jobs=2,
        cache=cache,
        checkpoint=journal,
        resume=True,
        workload_factory=faults.chaos_workload,
    )
    assert second.exit_code == EXIT_OK
    resumed = {o.name for o in second if o.resumed}
    assert resumed == set(names) - {victim}
    fresh = next(o for o in second if o.name == victim)
    assert fresh.ok and not fresh.resumed
