"""Deterministic fault injection for chaos tests.

The execution layer's resilience claims (retries, pool respawn,
checkpoint/resume) only mean something if tests can make workers fail
*on demand, reproducibly, in another process*.  This module is that
seam.

Faults are described by a **plan** — a mapping from task id to a fault
spec — published to worker processes through two environment variables
(set them before the pool forks and every worker sees the plan):

* ``REPRO_CHAOS_PLAN`` — path of the JSON plan file;
* ``REPRO_CHAOS_DIR`` — a scratch directory where each probe claims an
  attempt marker with ``O_CREAT | O_EXCL``, so attempts are counted
  across process boundaries (workers are separate, possibly respawned,
  processes — an in-memory counter would reset with every retry).

A task under test calls :func:`probe` with its task id.  If the ambient
plan has a spec for that id and the task is still within its faulty
attempts, the probe injects the fault:

* ``raise`` — raise :class:`ChaosError` (a transient, retryable error);
* ``hang`` — sleep ``hang_seconds`` (drives deadline/straggler tests);
* ``sigkill`` — ``SIGKILL`` its own process (drives
  ``BrokenProcessPool`` recovery: no cleanup, no excuses).

Everything is deterministic: :func:`make_plan` derives the victim set
and fault kinds from a seed, and the injector itself has no randomness
— the n-th probe of a task id always behaves the same.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

PLAN_ENV = "REPRO_CHAOS_PLAN"
DIR_ENV = "REPRO_CHAOS_DIR"

KINDS = ("raise", "hang", "sigkill")

#: Safety valve for the attempt-marker scan; no test retries this much.
_MAX_ATTEMPTS_TRACKED = 10_000


class ChaosError(RuntimeError):
    """The injected transient failure (retryable by default policies)."""


def make_plan(
    seed: int,
    task_ids: Sequence[str],
    kinds: Tuple[str, ...] = ("raise", "sigkill"),
    fraction: float = 0.25,
    attempts: int = 1,
    hang_seconds: float = 30.0,
) -> Dict[str, dict]:
    """Derive a fault plan from *seed*: pick ``max(1, fraction)`` of the
    task ids and assign each a fault kind, all reproducibly."""
    import random

    for kind in kinds:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    rng = random.Random(seed)
    count = max(1, int(len(task_ids) * fraction))
    victims = sorted(rng.sample(list(task_ids), count))
    return {
        victim: {
            "kind": rng.choice(kinds),
            "attempts": attempts,
            "hang_seconds": hang_seconds,
        }
        for victim in victims
    }


def arm(plan: Dict[str, dict], base_dir) -> Dict[str, str]:
    """Write *plan* under *base_dir* and return the env vars that
    activate it (apply with ``monkeypatch.setenv`` so the fault zone
    ends with the test)."""
    base = pathlib.Path(base_dir)
    scratch = base / "scratch"
    scratch.mkdir(parents=True, exist_ok=True)
    plan_path = base / "plan.json"
    plan_path.write_text(json.dumps(plan, indent=2))
    return {PLAN_ENV: str(plan_path), DIR_ENV: str(scratch)}


def _load_plan() -> Optional[Tuple[Dict[str, dict], pathlib.Path]]:
    plan_path = os.environ.get(PLAN_ENV)
    scratch = os.environ.get(DIR_ENV)
    if not plan_path or not scratch:
        return None
    with open(plan_path, "r") as stream:
        return json.load(stream), pathlib.Path(scratch)


def _claim_attempt(scratch: pathlib.Path, task_id: str) -> int:
    """Claim the next attempt number for *task_id* (1-based) by creating
    the first marker file that doesn't exist yet — atomic across
    processes, monotonic across pool respawns."""
    for attempt in range(1, _MAX_ATTEMPTS_TRACKED):
        marker = scratch / f"{task_id}.attempt{attempt}"
        try:
            os.close(os.open(str(marker), os.O_CREAT | os.O_EXCL))
            return attempt
        except FileExistsError:
            continue
    raise RuntimeError(f"chaos task {task_id!r} probed too many times")


def probe(task_id: str) -> int:
    """Fault-injection point: call this from the task under test.

    Returns the attempt number this probe claimed (0 when no plan is
    armed or *task_id* isn't a victim).  While the attempt is within the
    spec's ``attempts`` budget the configured fault fires instead.
    """
    loaded = _load_plan()
    if loaded is None:
        return 0
    plan, scratch = loaded
    spec = plan.get(task_id)
    if spec is None:
        return 0
    attempt = _claim_attempt(scratch, task_id)
    if attempt > int(spec.get("attempts", 1)):
        return attempt
    kind = spec["kind"]
    if kind == "raise":
        raise ChaosError(
            f"injected transient failure (task {task_id!r}, "
            f"attempt {attempt})"
        )
    if kind == "hang":
        time.sleep(float(spec.get("hang_seconds", 30.0)))
        return attempt
    if kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise ValueError(f"unknown fault kind {kind!r}")


def chaos_workload(name: str, macros: int, seed: int = 1):
    """Drop-in ``workload_factory`` for :func:`repro.runtime.run_suite`
    that probes the fault plan (task id = workload name) before
    generating the real workload.  Module-level, so it pickles into pool
    workers."""
    from repro.workloads.suite import make_workload

    probe(name)
    return make_workload(name, macros, seed=seed)


def chaos_task(index: int, payload: int = 0) -> int:
    """Minimal :func:`parallel_map` task: probe (task id = index), then
    return a deterministic function of the arguments."""
    probe(str(index))
    return index * index + payload


class ChaosModel:
    """A predictor wrapper that probes the fault plan before pricing.

    Wraps an :class:`~repro.core.model.RpStacksModel` (delegating the
    numeric surface bit-for-bit, so fronts stay comparable against the
    unwrapped model) and calls :func:`probe` with *probe_id* at every
    ``predict_cycles_matrix`` call — each chunk evaluation consumes one
    attempt number, so a spec with ``attempts: 1`` faults exactly the
    first chunk priced anywhere in the run.
    """

    def __init__(self, inner, probe_id: str = "model") -> None:
        self.inner = inner
        self.probe_id = probe_id

    @property
    def num_uops(self):
        return self.inner.num_uops

    @property
    def segment_stacks(self):
        return self.inner.segment_stacks

    @property
    def baseline(self):
        return self.inner.baseline

    def predict_cycles_matrix(self, thetas):
        probe(self.probe_id)
        return self.inner.predict_cycles_matrix(thetas)

    def predict_cycles(self, latency):
        return self.inner.predict_cycles(latency)

    def predict_many(self, points):
        return self.inner.predict_many(points)

    def predict_cpi(self, latency):
        return self.inner.predict_cpi(latency)
