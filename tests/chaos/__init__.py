"""Deterministic chaos tests: fault injection for the execution layer."""
