"""Chaos acceptance: a 100k-point sweep survives interruption and
worker deaths.

Three drills on the same six-figure design space:

* interrupt a checkpointed sweep mid-run and resume it — the front must
  be **bit-identical** to an uninterrupted baseline;
* inject a transient exception into a sharded sweep's predictor — the
  shard retries and the front matches the serial run;
* SIGKILL a shard's worker mid-chunk — the pool respawns, the shard
  re-runs, and the front still matches.
"""

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.designspace import DesignSpace
from repro.dse.sweep import sweep_space
from repro.runtime import RetryPolicy, SweepInterrupted
from tests.chaos import faults


def vec(**units):
    out = np.zeros(NUM_EVENTS)
    for name, value in units.items():
        out[EventType[name]] = value
    return out


@pytest.fixture(scope="module")
def model():
    seg0 = np.stack([vec(FP_ADD=4, BASE=10), vec(L1D=5, LD=2, BASE=8)])
    seg1 = np.stack([vec(MEM_D=1, BASE=6), vec(L2D=7, BASE=20)])
    return RpStacksModel(
        [seg0, seg1], baseline=LatencyConfig(), num_uops=100
    )


@pytest.fixture(scope="module")
def big_space():
    """8 * 10 * 50 * 25 = 100,000 design points."""
    space = DesignSpace.from_mapping(
        {
            EventType.L1D: list(range(1, 9)),
            EventType.FP_ADD: list(range(1, 11)),
            EventType.MEM_D: list(range(10, 110, 2)),
            EventType.L2D: list(range(1, 26)),
        }
    )
    assert space.num_points == 100_000
    return space


@pytest.fixture(scope="module")
def baseline(model, big_space):
    """The uninterrupted serial run every drill is compared against."""
    return sweep_space(model, big_space, chunk_size=4096)


def front_key(result):
    return [
        (c.latency, c.predicted_cpi, c.cost)
        for c in result.pareto_front()
    ]


def candidate_key(result):
    return [
        (c.latency, c.predicted_cpi, c.cost) for c in result.candidates
    ]


def _arm(plan, tmp_path, monkeypatch):
    for key, value in faults.arm(plan, tmp_path / "chaos").items():
        monkeypatch.setenv(key, value)


def test_interrupted_sweep_resumes_bit_identical(
    tmp_path, model, big_space, baseline
):
    """Kill the sweep after 7 of 25 chunks, resume, compare bit-for-bit."""
    ckpt = tmp_path / "sweep.ckpt.npz"
    with pytest.raises(SweepInterrupted) as exc:
        sweep_space(
            model,
            big_space,
            chunk_size=4096,
            checkpoint=ckpt,
            checkpoint_interval=3,
            abort_after_chunks=7,
        )
    assert exc.value.chunks_done == 7
    assert ckpt.exists()
    resumed = sweep_space(
        model,
        big_space,
        chunk_size=4096,
        checkpoint=ckpt,
        resume=True,
    )
    assert candidate_key(resumed) == candidate_key(baseline)
    assert front_key(resumed) == front_key(baseline)
    assert resumed.num_meeting_target == baseline.num_meeting_target


def test_sharded_sweep_retries_transient_fault(
    tmp_path, monkeypatch, model, big_space, baseline
):
    """First chunk priced anywhere raises ChaosError; the shard retries
    and the sharded front matches the serial baseline."""
    _arm(
        {"pricing": {"kind": "raise", "attempts": 1}},
        tmp_path,
        monkeypatch,
    )
    chaotic = faults.ChaosModel(model, probe_id="pricing")
    swept = sweep_space(
        chaotic,
        big_space,
        chunk_size=4096,
        jobs=2,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
    )
    assert candidate_key(swept) == candidate_key(baseline)
    assert swept.num_meeting_target == baseline.num_meeting_target


def test_sharded_sweep_survives_worker_sigkill(
    tmp_path, monkeypatch, model, big_space, baseline
):
    """A shard's worker SIGKILLs itself mid-sweep; the pool respawns,
    the shard re-runs, and the front is unchanged."""
    _arm(
        {"pricing": {"kind": "sigkill", "attempts": 1}},
        tmp_path,
        monkeypatch,
    )
    chaotic = faults.ChaosModel(model, probe_id="pricing")
    swept = sweep_space(
        chaotic,
        big_space,
        chunk_size=4096,
        jobs=2,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
    )
    assert candidate_key(swept) == candidate_key(baseline)
    assert swept.num_meeting_target == baseline.num_meeting_target


def test_sweep_without_retry_fails_loudly(
    tmp_path, monkeypatch, model, big_space
):
    """No retry policy: the injected fault surfaces as a hard error
    naming the shard failure, not a silent wrong answer."""
    _arm(
        {"pricing": {"kind": "raise", "attempts": 99}},
        tmp_path,
        monkeypatch,
    )
    chaotic = faults.ChaosModel(model, probe_id="pricing")
    with pytest.raises(RuntimeError, match="shard"):
        sweep_space(chaotic, big_space, chunk_size=4096, jobs=2)
