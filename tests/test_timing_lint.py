"""The timing lint must keep ``src/`` clean and actually catch drift."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_timing import ALLOWED, find_violations  # noqa: E402


def test_src_tree_is_clean():
    assert find_violations(REPO) == []


def test_lint_catches_a_bare_perf_counter(tmp_path):
    src = tmp_path / "src" / "pkg"
    src.mkdir(parents=True)
    (src / "hot.py").write_text(
        "import time\nstart = time.perf_counter()\n"
    )
    violations = find_violations(tmp_path)
    assert len(violations) == 1
    assert "src/pkg/hot.py:2" in violations[0]


def test_allowlist_covers_only_the_clock_module(tmp_path):
    assert ALLOWED == frozenset({"src/repro/obs/clock.py"})
    src = tmp_path / "src" / "repro" / "obs"
    src.mkdir(parents=True)
    (src / "clock.py").write_text("import time\nt = time.time_ns()\n")
    assert find_violations(tmp_path) == []


def test_cli_entrypoint_exits_zero_on_clean_tree():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_timing.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "timing lint ok" in result.stdout
