"""The timing lint must keep ``src/`` clean and actually catch drift."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_timing import ALLOWED, find_violations  # noqa: E402


def test_src_and_benchmarks_trees_are_clean():
    assert find_violations(REPO) == []


def test_lint_catches_a_bare_perf_counter(tmp_path):
    src = tmp_path / "src" / "pkg"
    src.mkdir(parents=True)
    (src / "hot.py").write_text(
        "import time\nstart = time.perf_counter()\n"
    )
    violations = find_violations(tmp_path)
    assert len(violations) == 1
    assert "src/pkg/hot.py:2" in violations[0]


def test_lint_covers_benchmarks_tree(tmp_path):
    bench = tmp_path / "benchmarks"
    bench.mkdir(parents=True)
    (bench / "bench_new.py").write_text(
        "import time\nstart = time.monotonic()\n"
    )
    violations = find_violations(tmp_path)
    assert len(violations) == 1
    assert "benchmarks/bench_new.py:2" in violations[0]


def test_allowlist_covers_only_the_seam_and_legacy_figure_benches(
    tmp_path,
):
    assert ALLOWED == frozenset(
        {
            "src/repro/obs/clock.py",
            "benchmarks/bench_fig07_sampling.py",
            "benchmarks/bench_eval_scaling.py",
        }
    )
    src = tmp_path / "src" / "repro" / "obs"
    src.mkdir(parents=True)
    (src / "clock.py").write_text("import time\nt = time.time_ns()\n")
    bench = tmp_path / "benchmarks"
    bench.mkdir(parents=True)
    (bench / "bench_fig07_sampling.py").write_text(
        "import time\nt = time.perf_counter()\n"
    )
    assert find_violations(tmp_path) == []


def test_cli_entrypoint_exits_zero_on_clean_tree():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_timing.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "timing lint ok" in result.stdout
