"""Examples stay runnable: import every script, run the fast ones."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {path.stem for path in ALL_EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 5


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
)
def test_example_imports_and_has_main(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None)), path.stem
    assert module.__doc__, "examples must document themselves"


def test_quickstart_runs(capsys, monkeypatch):
    module = load_example(EXAMPLES_DIR / "quickstart.py")
    # Shrink the workload for test speed; the script's flow is unchanged.
    import repro.workloads as workloads

    original = workloads.make_workload
    monkeypatch.setattr(
        module,
        "make_workload",
        lambda name, num_macro_ops=800: original(name, 200),
    )
    module.main()
    out = capsys.readouterr().out
    assert "baseline CPI" in out
    assert "Pareto front" in out
    assert "chosen design" in out


def test_branch_predictor_study_runs(capsys):
    module = load_example(EXAMPLES_DIR / "branch_predictor_study.py")
    module.BRANCHY = module.BRANCHY.resized(300)
    module.main()
    out = capsys.readouterr().out
    assert "gshare" in out
    assert "bimodal" in out
