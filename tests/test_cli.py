"""Command-line interface tests (driving main() in-process)."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestSimulate:
    def test_prints_cpi_and_stats(self, capsys):
        code, out = run(capsys, "simulate", "gamess", "--macros", "100")
        assert code == 0
        assert "CPI=" in out
        assert "branch_mispredictions" in out

    def test_overrides_change_the_run(self, capsys):
        _code, base_out = run(capsys, "simulate", "gamess", "--macros", "100")
        _code, fast_out = run(
            capsys, "simulate", "gamess", "--macros", "100",
            "--override", "Fadd=1", "--override", "Fmul=1",
        )
        assert base_out != fast_out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["simulate", "doom"])

    def test_bad_override_rejected(self):
        with pytest.raises(SystemExit, match="bad override"):
            main(["simulate", "gamess", "--override", "Fadd=fast"])

    def test_structure_domain_override_rejected(self):
        # BR_MISP parses as an event but is rejected by LatencyConfig
        # only for BASE; BR_MISP is allowed to change within simulate.
        code = main(
            ["simulate", "gamess", "--macros", "80", "--override",
             "BrMisp=12"]
        )
        assert code == 0


class TestNativeGate:
    def test_native_flag_publishes_the_gate(self, capsys, monkeypatch):
        import os

        # setenv (not delenv) so teardown restores the pre-test state
        # even though main() mutates os.environ directly.
        monkeypatch.setenv("REPRO_NATIVE", "auto")
        code, off_out = run(
            capsys, "--native", "off", "simulate", "gamess",
            "--macros", "100",
        )
        assert code == 0
        assert os.environ["REPRO_NATIVE"] == "0"
        code, auto_out = run(
            capsys, "--native", "auto", "simulate", "gamess",
            "--macros", "100",
        )
        assert code == 0
        assert os.environ["REPRO_NATIVE"] == "auto"
        # Both paths are bit-identical, so the printed run must match.
        assert off_out == auto_out

    def test_native_on_and_off_agree(self, capsys, monkeypatch):
        from repro.simulator.native import load_native_sim

        monkeypatch.setenv("REPRO_NATIVE", "auto")
        if load_native_sim() is None:
            pytest.skip("no C compiler available")
        code, on_out = run(
            capsys, "--native", "on", "simulate", "gamess",
            "--macros", "100",
        )
        assert code == 0
        code, off_out = run(
            capsys, "--native", "off", "simulate", "gamess",
            "--macros", "100",
        )
        assert code == 0
        assert on_out == off_out


class TestAnalyze:
    def test_prints_decomposition(self, capsys):
        code, out = run(capsys, "analyze", "gamess", "--macros", "100")
        assert code == 0
        assert "penalty decomposition" in out
        assert "representative paths" in out

    def test_save_and_reuse_model(self, capsys, tmp_path):
        model_path = tmp_path / "gamess.npz"
        code, out = run(
            capsys, "analyze", "gamess", "--macros", "100",
            "--save", str(model_path),
        )
        assert code == 0
        assert model_path.exists()
        code, out = run(
            capsys, "explore", "gamess", "--model", str(model_path),
            "--axis", "L1D=1,2,4", "--axis", "Fadd=1,3,6",
        )
        assert code == 0
        assert "9 design points" in out


class TestExplore:
    def test_sweeps_and_prints_pareto(self, capsys):
        code, out = run(
            capsys, "explore", "gamess", "--macros", "100",
            "--axis", "L1D=1,2,4", "--axis", "Fadd=1,3,6",
            "--target-fraction", "0.9",
        )
        assert code == 0
        assert "design points" in out
        assert "predicted CPI" in out

    def test_requires_an_axis(self):
        with pytest.raises(SystemExit, match="at least one --axis"):
            main(["explore", "gamess"])

    def test_rejects_structure_domain_axis(self):
        with pytest.raises(SystemExit):
            main(["explore", "gamess", "--axis", "BrMisp=1,2"])

    def test_rejects_malformed_axis(self):
        with pytest.raises(SystemExit, match="bad axis"):
            main(["explore", "gamess", "--axis", "L1D="])


class TestCompare:
    def test_scores_all_methods(self, capsys):
        code, out = run(
            capsys, "compare", "gamess", "--macros", "100",
            "--override", "L1D=2",
        )
        assert code == 0
        for method in ("rpstacks", "cp1", "fmt"):
            assert method in out

    def test_requires_an_override(self):
        with pytest.raises(SystemExit, match="at least one --override"):
            main(["compare", "gamess"])


class TestTraceWorkflow:
    def test_simulate_save_then_analyze_from_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "run.npz"
        code = main(
            ["simulate", "gamess", "--macros", "100",
             "--save-trace", str(trace_path)]
        )
        assert code == 0
        assert trace_path.exists()
        code = main(["analyze", "gamess", "--from-trace", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "representative paths" in out

    def test_from_trace_matches_live_analysis(self, capsys, tmp_path):
        trace_path = tmp_path / "run.npz"
        main(["simulate", "gamess", "--macros", "100",
              "--save-trace", str(trace_path)])
        capsys.readouterr()
        main(["analyze", "gamess", "--macros", "100"])
        live = capsys.readouterr().out
        main(["analyze", "gamess", "--from-trace", str(trace_path)])
        archived = capsys.readouterr().out
        # Same decomposition from the live and the archived pipeline.
        assert live.splitlines()[1:] == archived.splitlines()[1:]


class TestJsonOutput:
    def test_explore_json(self, capsys):
        import json

        code = main(
            ["explore", "gamess", "--macros", "100",
             "--axis", "L1D=1,2,4", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_points"] == 3
        assert data["pareto_front"]
        first = data["pareto_front"][0]
        assert "L1D" in first["latency"]
        assert first["predicted_cpi"] > 0


class TestPipelineCommand:
    def test_draws_a_diagram(self, capsys):
        code = main(
            ["pipeline", "gamess", "--macros", "80",
             "--first", "0", "--count", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "opclass" in out
        assert "C" in out  # commits drawn

    def test_window_validation(self):
        with pytest.raises(ValueError):
            main(["pipeline", "gamess", "--macros", "50",
                  "--count", "0"])


class TestSuiteCommand:
    def test_runs_selected_workloads(self, capsys):
        code, out = run(
            capsys, "suite", "--only", "gamess", "--only", "bzip2",
            "--macros", "60",
        )
        assert code == 0
        assert "gamess" in out and "bzip2" in out
        assert "2/2 workloads" in out

    def test_cache_dir_turns_second_run_into_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run(capsys, "suite", "--only", "gamess", "--macros", "60",
            "--cache-dir", cache_dir)
        code, out = run(
            capsys, "suite", "--only", "gamess", "--macros", "60",
            "--cache-dir", cache_dir,
        )
        assert code == 0
        assert "hit" in out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit, match="doom"):
            main(["suite", "--only", "doom"])


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run(capsys, "analyze", "gamess", "--macros", "60",
            "--cache-dir", cache_dir)
        code, out = run(capsys, "cache", "stats", "--cache-dir", cache_dir)
        assert code == 0
        assert "entries" in out and "gamess" in out
        code, out = run(capsys, "cache", "clear", "--cache-dir", cache_dir)
        assert code == 0
        assert "removed 1" in out
        code, out = run(capsys, "cache", "stats", "--cache-dir", cache_dir)
        assert code == 0

    def test_analyze_cache_dir_is_reused(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        _code, first = run(capsys, "analyze", "gamess", "--macros", "60",
                           "--cache-dir", cache_dir)
        _code, second = run(capsys, "analyze", "gamess", "--macros", "60",
                            "--cache-dir", cache_dir)
        # Identical decomposition whether computed or served from cache.
        assert first == second


class TestReportCommand:
    def test_prints_markdown(self, capsys):
        code = main(["report", "gamess", "--macros", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# Analysis report: gamess" in out
        assert "## Probe validation" in out

    def test_writes_to_file(self, capsys, tmp_path):
        target = tmp_path / "reports" / "gamess.md"
        code = main(
            ["report", "gamess", "--macros", "100",
             "--output", str(target)]
        )
        assert code == 0
        assert target.exists()
        assert "# Analysis report" in target.read_text()


class TestDseSweep:
    def test_streams_and_prints_front_with_metrics(self, capsys):
        code, out = run(
            capsys, "dse", "sweep", "gamess", "--macros", "100",
            "--axis", "L1D=1,2,4", "--axis", "Fadd=1,3,6",
            "--target-fraction", "0.9", "--chunk-size", "4",
        )
        assert code == 0
        assert "design points" in out
        assert "points/s" in out
        assert "predicted CPI" in out

    def test_sweep_matches_explore_front(self, capsys):
        argv = [
            "gamess", "--macros", "100",
            "--axis", "L1D=1,2,4", "--axis", "Fadd=1,3,6",
        ]
        _code, explore_out = run(capsys, "explore", *argv)
        _code, sweep_out = run(
            capsys, "dse", "sweep", *argv, "--chunk-size", "5"
        )
        def table(out):
            lines = out.splitlines()
            header = next(
                i for i, line in enumerate(lines)
                if line.startswith("design point")
            )
            return lines[header:]

        assert table(explore_out) == table(sweep_out)

    def test_json_includes_metrics(self, capsys):
        code, out = run(
            capsys, "dse", "sweep", "gamess", "--macros", "100",
            "--axis", "L1D=1,2", "--json",
        )
        assert code == 0
        import json

        payload = json.loads(out)
        assert payload["metrics"]["num_points"] == 2
        assert payload["num_points"] == 2

    def test_requires_an_axis(self):
        with pytest.raises(SystemExit, match="at least one --axis"):
            main(["dse", "sweep", "gamess"])

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(SystemExit, match="chunk-size"):
            main(["dse", "sweep", "gamess", "--axis", "L1D=1,2",
                  "--chunk-size", "0"])

    def test_saved_model_drives_the_sweep(self, capsys, tmp_path):
        model_path = tmp_path / "gamess.npz"
        run(capsys, "analyze", "gamess", "--macros", "100",
            "--save", str(model_path))
        code, out = run(
            capsys, "dse", "sweep", "gamess", "--model", str(model_path),
            "--axis", "L1D=1,2,4", "--top-k", "2",
        )
        assert code == 0
        assert "loaded model" in out


class TestObservability:
    """The --trace-out/--metrics-json flags and progress reporting."""

    def test_suite_summary_names_the_slowest_workload(self, capsys):
        code, out = run(
            capsys, "suite", "--only", "gamess", "--only", "bzip2",
            "--macros", "60",
        )
        assert code == 0
        assert "slowest" in out

    def test_analyze_trace_out_writes_a_loadable_trace(self, capsys, tmp_path):
        from repro.obs.tracer import load_chrome_trace

        trace = tmp_path / "trace.json"
        code, out = run(
            capsys, "analyze", "gamess", "--macros", "60",
            "--trace-out", str(trace),
        )
        assert code == 0
        assert "instrumentation written to" in out
        names = {event["name"] for event in load_chrome_trace(trace)}
        # The root pipeline span and at least one nested stage.
        assert "analyze" in names
        assert "sim.run" in names
        assert "graph.build" in names

    def test_suite_metrics_json_snapshot(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        code, _out = run(
            capsys, "suite", "--only", "gamess", "--macros", "60",
            "--metrics-json", str(metrics),
        )
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["suite.workloads"] == 1
        assert "suite.wall_seconds" in snapshot["gauges"]

    def test_sweep_progress_lines_reach_stderr(self, capsys):
        code = main(
            ["dse", "sweep", "gamess", "--macros", "100",
             "--axis", "L1D=1,2,4", "--axis", "Fadd=1,3,6",
             "--chunk-size", "2", "--progress", "0"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "sweep:" in captured.err
        assert "chunks" in captured.err
        assert "front size" in captured.err


class TestFaultToleranceCli:
    SWEEP_ARGS = [
        "gamess", "--macros", "100",
        "--axis", "L1D=1,2,4", "--axis", "Fadd=1,3,6",
        "--chunk-size", "2",
    ]

    @staticmethod
    def front_table(out):
        lines = out.splitlines()
        header = next(
            i for i, line in enumerate(lines)
            if line.startswith("design point")
        )
        return lines[header:]

    def test_sweep_interrupt_exits_4_then_resume_matches(
        self, capsys, tmp_path
    ):
        _code, plain_out = run(capsys, "dse", "sweep", *self.SWEEP_ARGS)
        ckpt = tmp_path / "sweep.ckpt.npz"
        code = main(
            ["dse", "sweep", *self.SWEEP_ARGS,
             "--checkpoint", str(ckpt), "--checkpoint-interval", "2",
             "--abort-after-chunks", "2"]
        )
        out = capsys.readouterr().out
        assert code == 4  # EXIT_SWEEP_INTERRUPTED
        assert "interrupted" in out
        assert "--resume" in out
        assert ckpt.exists()
        code, resumed_out = run(
            capsys, "dse", "sweep", *self.SWEEP_ARGS,
            "--checkpoint", str(ckpt), "--resume",
        )
        assert code == 0
        assert self.front_table(resumed_out) == self.front_table(plain_out)

    def test_sweep_stale_checkpoint_rejected(self, capsys, tmp_path):
        ckpt = tmp_path / "sweep.ckpt.npz"
        code = main(
            ["dse", "sweep", *self.SWEEP_ARGS,
             "--checkpoint", str(ckpt), "--abort-after-chunks", "2"]
        )
        capsys.readouterr()
        assert code == 4
        with pytest.raises(SystemExit, match="chunk size"):
            main(
                ["dse", "sweep", *self.SWEEP_ARGS[:-2],
                 "--chunk-size", "3",
                 "--checkpoint", str(ckpt), "--resume"]
            )

    def test_sweep_flag_validation(self, tmp_path):
        with pytest.raises(SystemExit, match="retries"):
            main(["dse", "sweep", *self.SWEEP_ARGS, "--retries", "-1"])
        with pytest.raises(SystemExit, match="resume"):
            main(["dse", "sweep", *self.SWEEP_ARGS, "--resume"])
        with pytest.raises(SystemExit, match="jobs=1"):
            main(
                ["dse", "sweep", *self.SWEEP_ARGS, "--jobs", "2",
                 "--checkpoint", str(tmp_path / "c.npz")]
            )

    def test_suite_checkpoint_then_resume_reports_resumed(
        self, capsys, tmp_path
    ):
        journal = tmp_path / "suite.journal.json"
        cache = tmp_path / "cache"
        base = ["suite", "--only", "gamess", "--macros", "60",
                "--cache-dir", str(cache), "--checkpoint", str(journal)]
        code, _out = run(capsys, *base)
        assert code == 0
        assert journal.exists()
        code, out = run(capsys, *base, "--resume")
        assert code == 0
        assert "1 resumed" in out

    def test_suite_stale_journal_rejected(self, capsys, tmp_path):
        journal = tmp_path / "suite.journal.json"
        cache = tmp_path / "cache"
        code, _out = run(
            capsys, "suite", "--only", "gamess", "--macros", "60",
            "--cache-dir", str(cache), "--checkpoint", str(journal),
        )
        assert code == 0
        with pytest.raises(SystemExit, match="suite configuration"):
            main(
                ["suite", "--only", "gamess", "--macros", "80",
                 "--cache-dir", str(cache),
                 "--checkpoint", str(journal), "--resume"]
            )

    def test_suite_flag_validation(self, tmp_path):
        with pytest.raises(SystemExit, match="retries"):
            main(["suite", "--only", "gamess", "--retries", "-1"])
        with pytest.raises(SystemExit, match="checkpoint"):
            main(["suite", "--only", "gamess", "--resume"])
        with pytest.raises(SystemExit, match="cache"):
            main(
                ["suite", "--only", "gamess",
                 "--checkpoint", str(tmp_path / "j.json"), "--resume"]
            )
