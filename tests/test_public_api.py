"""Public API surface tests: the documented imports must keep working."""

import importlib

import pytest

import repro


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.common",
        "repro.isa",
        "repro.workloads",
        "repro.simulator",
        "repro.graphmodel",
        "repro.core",
        "repro.baselines",
        "repro.sampling",
        "repro.dse",
        "repro.runtime",
    ],
)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, module
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name}"


def test_readme_quickstart_names_exist():
    # The exact names the README quickstart uses.
    from repro import analyze, make_workload, reduction_space  # noqa: F401
    from repro.common import EventType  # noqa: F401


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_public_functions_have_docstrings():
    import inspect

    undocumented = []
    for module_name in (
        "repro.core.model",
        "repro.core.generator",
        "repro.core.reduction",
        "repro.dse.explorer",
        "repro.dse.portfolio",
        "repro.graphmodel.graph",
        "repro.simulator.machine",
    ):
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
    assert not undocumented, undocumented


def test_session_all_predictors(tiny_session):
    predictors = tiny_session.all_predictors()
    assert set(predictors) == {
        "rpstacks", "cp1", "fmt", "interval", "graph-reeval",
    }
    base = tiny_session.config.latency
    for name, predictor in predictors.items():
        assert predictor.predict_cycles(base) > 0, name
