"""FMT baseline tests."""

import pytest

from repro.baselines.fmt import FMTPredictor
from repro.common.events import EventType


def test_components_account_every_cycle(tiny_result):
    fmt = FMTPredictor(tiny_result)
    assert sum(fmt.components.values()) == pytest.approx(
        tiny_result.cycles, abs=1.0
    )


def test_cpi_stack_sums_to_baseline_cpi(tiny_result):
    fmt = FMTPredictor(tiny_result)
    assert sum(fmt.cpi_stack().values()) == pytest.approx(
        tiny_result.cpi, rel=0.01
    )


def test_baseline_prediction_reproduces_baseline(tiny_result):
    fmt = FMTPredictor(tiny_result)
    assert fmt.predict_cycles(tiny_result.config.latency) == pytest.approx(
        tiny_result.cycles, abs=1.0
    )


def test_base_component_covers_committing_cycles(tiny_result):
    # BASE counts every committing cycle, plus any stall cycle whose
    # blame resolves to no specific event.
    fmt = FMTPredictor(tiny_result)
    committing_cycles = len({u.t_commit for u in tiny_result.uops})
    assert fmt.components[EventType.BASE] >= committing_cycles
    assert fmt.components[EventType.BASE] <= tiny_result.cycles


def test_prediction_scales_stall_components_only(tiny_result):
    fmt = FMTPredictor(tiny_result)
    base = tiny_result.config.latency
    faster = base.with_overrides({EventType.L1D: 2})
    expected_delta = fmt.components.get(EventType.L1D, 0.0) * (1 - 2 / 4)
    actual_delta = fmt.predict_cycles(base) - fmt.predict_cycles(faster)
    assert actual_delta == pytest.approx(expected_delta)


def test_memory_bound_workload_blames_memory(mcf_workload):
    from repro.simulator.machine import Machine

    result = Machine(mcf_workload).simulate()
    fmt = FMTPredictor(result)
    stack = fmt.cpi_stack()
    memory_share = sum(
        value
        for event, value in stack.items()
        if event in (EventType.MEM_D, EventType.L2D, EventType.DTLB)
    )
    assert memory_share > 0.5 * sum(stack.values())


def test_fmt_is_overlap_blind(tiny_result):
    """FMT attributes each stall cycle to exactly one event — the sum of
    its non-base components can therefore differ from the true combined
    penalty exposure.  Here we just pin the structural property: every
    cycle is attributed exactly once."""
    fmt = FMTPredictor(tiny_result)
    assert all(value >= 0 for value in fmt.components.values())
    assert sum(fmt.components.values()) <= tiny_result.cycles + 1
