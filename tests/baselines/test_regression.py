"""Empirical regression baseline tests."""

import pytest

from repro.baselines.regression import (
    RegressionPredictor,
    latency_features,
    train_regression,
)
from repro.common.config import LatencyConfig
from repro.common.events import LATENCY_DOMAIN, EventType
from repro.dse.designspace import DesignSpace
from repro.simulator.machine import Machine


@pytest.fixture(scope="module")
def space():
    return DesignSpace.from_mapping(
        {
            EventType.L1D: [1, 2, 4],
            EventType.FP_ADD: [1, 3, 6],
            EventType.FP_MUL: [1, 3, 6],
        }
    )


def test_feature_vector_layout():
    features = latency_features(LatencyConfig())
    assert features.shape == (len(LATENCY_DOMAIN) + 1,)
    assert features[0] == 1.0


def test_untrained_model_refuses_to_predict():
    predictor = RegressionPredictor(num_uops=100)
    with pytest.raises(RuntimeError, match="fit"):
        predictor.predict_cycles(LatencyConfig())


def test_empty_training_set_rejected(tiny_machine):
    with pytest.raises(ValueError):
        RegressionPredictor(num_uops=1).fit(tiny_machine, [])


def test_training_runs_are_counted(tiny_machine, space):
    predictor = train_regression(tiny_machine, space, num_samples=6)
    assert predictor.training_runs == 6
    assert predictor.is_trained


def test_interpolates_on_seen_points(tiny_workload, space):
    machine = Machine(tiny_workload)
    points = space.points()[:12]
    predictor = RegressionPredictor(len(tiny_workload)).fit(machine, points)
    for point in points[:4]:
        simulated = machine.cycles(point)
        assert predictor.predict_cycles(point) == pytest.approx(
            simulated, rel=0.10
        )


def test_accuracy_improves_with_training_budget(tiny_workload, space):
    machine = Machine(tiny_workload)
    held_out = space.points()[::5]

    def mean_error(samples):
        predictor = train_regression(machine, space, samples, seed=3)
        errors = []
        for point in held_out:
            simulated = machine.cycles(point)
            errors.append(
                abs(predictor.predict_cycles(point) - simulated) / simulated
            )
        return sum(errors) / len(errors)

    assert mean_error(20) <= mean_error(3) + 0.01


def test_single_simulation_regression_is_poor(tiny_workload, space):
    """The cost story: with one training run (RpStacks' budget) the
    regression cannot rank designs at all — it predicts a constant."""
    machine = Machine(tiny_workload)
    predictor = train_regression(machine, space, num_samples=1)
    a = predictor.predict_cycles(space.points()[0])
    b = predictor.predict_cycles(space.points()[-1])
    simulated_a = machine.cycles(space.points()[0])
    simulated_b = machine.cycles(space.points()[-1])
    # Ground truth separates the extreme points clearly ...
    assert abs(simulated_a - simulated_b) / simulated_b > 0.10
    # ... but the one-sample regression barely does.
    assert abs(a - b) < abs(simulated_a - simulated_b)
