"""First-order interval-model tests."""

import pytest

from repro.baselines.interval import (
    IntervalModelPredictor,
    collect_statistics,
)
from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.isa.uop import OpClass
from repro.simulator.core import simulate
from repro.simulator.machine import Machine
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.kernels import independent_stream, serial_chain
from repro.workloads.suite import make_workload


class TestStatistics:
    def test_counts_mispredictions(self, tiny_result):
        stats = collect_statistics(tiny_result)
        assert (
            stats.mispredictions
            == tiny_result.stats["branch_mispredictions"]
        )

    def test_no_long_misses_means_unit_mlp(self):
        result = simulate(
            independent_stream(OpClass.INT_ALU, 100), baseline_config()
        )
        stats = collect_statistics(result)
        assert stats.memory_parallelism == 1.0
        assert not stats.memory_units

    def test_streaming_misses_show_parallelism(self):
        workload = generate(
            WorkloadSpec(
                name="stream", num_macro_ops=150, p_load=0.4,
                working_set_bytes=8 << 20, streaming_fraction=1.0,
                dep_distance_mean=40.0, code_footprint_bytes=128,
                p_branch=0.0, p_store=0.0,
            ),
            seed=0,
        )
        stats = collect_statistics(simulate(workload, baseline_config()))
        assert stats.memory_units.get(EventType.MEM_D, 0) > 0
        assert stats.memory_parallelism > 2.0

    def test_serial_chase_has_low_parallelism(self):
        result = simulate(make_workload("mcf", 150), baseline_config())
        stats = collect_statistics(result)
        assert stats.memory_parallelism < 1.7


class TestPrediction:
    def test_ideal_flow_on_wide_independent_stream(self):
        result = simulate(
            independent_stream(OpClass.INT_ALU, 400), baseline_config()
        )
        predictor = IntervalModelPredictor(result)
        assert predictor.predict_cpi(result.config.latency) == pytest.approx(
            result.cpi, rel=0.35
        )

    def test_memory_bound_workload_tracked(self):
        result = simulate(make_workload("mcf", 200), baseline_config())
        predictor = IntervalModelPredictor(result)
        assert predictor.predict_cpi(result.config.latency) == pytest.approx(
            result.cpi, rel=0.30
        )

    def test_memory_latency_scaling(self):
        machine = Machine(make_workload("mcf", 200))
        result = machine.simulate()
        predictor = IntervalModelPredictor(result)
        base = result.config.latency
        faster = base.with_overrides({EventType.MEM_D: 66})
        predicted_delta = predictor.predict_cycles(
            base
        ) - predictor.predict_cycles(faster)
        simulated_delta = machine.cycles(base) - machine.cycles(faster)
        assert predicted_delta == pytest.approx(simulated_delta, rel=0.35)

    def test_blind_to_dependence_chain_bottlenecks(self):
        """The documented failure mode: a serial FP chain's cycles are
        invisible to the interval model (no miss events at all)."""
        result = simulate(
            serial_chain(OpClass.FP_ADD, 200), baseline_config()
        )
        predictor = IntervalModelPredictor(result)
        predicted = predictor.predict_cpi(result.config.latency)
        # Simulator: ~6 CPI; the model predicts near the ideal 0.25.
        assert result.cpi > 5.0
        assert predicted < 1.0

    def test_cpi_stack_components_sum_to_prediction(self, tiny_result):
        predictor = IntervalModelPredictor(tiny_result)
        stack = predictor.cpi_stack()
        assert sum(stack.values()) == pytest.approx(
            predictor.predict_cpi(tiny_result.config.latency)
        )
