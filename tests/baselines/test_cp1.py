"""CP1 baseline tests."""

import pytest

from repro.common.events import EventType


def test_baseline_prediction_is_exact(gamess_session):
    cp1 = gamess_session.cp1
    base = gamess_session.config.latency
    assert cp1.predict_cycles(base) == pytest.approx(
        gamess_session.graph.longest_path_length(base)
    )


def test_cpi_stack_sums_to_predicted_cpi(gamess_session):
    cp1 = gamess_session.cp1
    base = gamess_session.config.latency
    stack_total = sum(cp1.cpi_stack().values())
    assert stack_total == pytest.approx(cp1.predict_cpi(base))


def test_prediction_scales_with_single_stack(gamess_session):
    cp1 = gamess_session.cp1
    base = gamess_session.config.latency
    fast = base.with_overrides({EventType.FP_ADD: 3})
    delta = cp1.predict_cycles(base) - cp1.predict_cycles(fast)
    # Linear in the stack's FP_ADD units: (6-3) cycles per unit.
    assert delta == pytest.approx(3 * cp1.stack[EventType.FP_ADD])


def test_cp1_misses_hidden_paths(gamess_session):
    """The documented CP1 failure mode: it can only ever under-predict
    relative to the exact graph once latency changes switch the critical
    path, because it re-prices a single fixed path."""
    base = gamess_session.config.latency
    optimised = base.with_overrides(
        {EventType.FP_ADD: 1, EventType.FP_MUL: 1, EventType.L1D: 1}
    )
    exact = gamess_session.graph.longest_path_length(optimised)
    assert gamess_session.cp1.predict_cycles(optimised) <= exact + 1e-9


def test_rpstacks_at_least_matches_cp1(gamess_session):
    """RpStacks keeps the critical path among its stacks, so its
    prediction is always >= CP1's single-stack prediction (unsegmented);
    segmented models additionally add boundary penalties."""
    base = gamess_session.config.latency
    for overrides in (
        {},
        {EventType.FP_ADD: 1},
        {EventType.L1D: 1, EventType.FP_MUL: 1},
    ):
        latency = base.with_overrides(overrides)
        assert (
            gamess_session.rpstacks.predict_cycles(latency)
            >= gamess_session.cp1.predict_cycles(latency) - 1e-9
        )
