"""Ctrl-C regression tests: interrupted checkpointed CLI runs must
flush their checkpoint and exit 4 (the documented interrupted code),
never traceback — and a ``--resume`` must finish the work with results
identical to an uninterrupted run.

Real subprocesses, real SIGINT: each drill launches ``python -m repro``
in its own session and signals it mid-run."""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cli import EXIT_SWEEP_INTERRUPTED
from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.io import save_model
from repro.core.model import RpStacksModel
from repro.obs import clock

SWEEP_AXES = [
    "--axis", "L1D=1,2,3,4,5,6,7,8",
    "--axis", "Fadd=1,2,3,4,5,6,7,8,9,10",
    "--axis", "L2D=" + ",".join(str(v) for v in range(1, 26)),
    "--axis", "MemD=" + ",".join(str(v) for v in range(10, 110, 2)),
    "--axis", "Ld=1,2,3,4",
]


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    def vec(**units):
        out = np.zeros(NUM_EVENTS)
        for name, value in units.items():
            out[EventType[name]] = value
        return out

    seg0 = np.stack([vec(FP_ADD=4, BASE=10), vec(L1D=5, LD=2, BASE=8)])
    seg1 = np.stack([vec(MEM_D=1, BASE=6), vec(L2D=7, BASE=20)])
    model = RpStacksModel(
        [seg0, seg1], baseline=LatencyConfig(), num_uops=100
    )
    return str(
        save_model(model, tmp_path_factory.mktemp("model") / "m.npz")
    )


def launch(*argv, **popen_kwargs):
    """Run ``python -m repro ...`` in its own session (so the SIGINT we
    send reaches only the child, like a terminal foreground group)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        **popen_kwargs,
    )


def interrupt_once_checkpointed(process, checkpoint_ready, grace=60.0):
    """SIGINT *process* as soon as *checkpoint_ready* reports progress
    on disk; returns (returncode, stdout, stderr)."""
    deadline = clock.perf_seconds() + grace
    while not checkpoint_ready():
        if process.poll() is not None:
            out, err = process.communicate()
            raise AssertionError(
                f"run finished before it could be interrupted "
                f"(rc={process.returncode})\n{out}\n{err}"
            )
        if clock.perf_seconds() > deadline:
            process.kill()
            raise AssertionError("checkpoint never appeared")
        time.sleep(0.01)
    process.send_signal(signal.SIGINT)
    out, err = process.communicate(timeout=60)
    return process.returncode, out, err


def front_of(stdout):
    # --model prints a "loaded model: ..." line ahead of the JSON body.
    return json.loads(stdout[stdout.index("{"):])["pareto_front"]


class TestSweepInterrupt:
    def test_sigint_flushes_checkpoint_exits_4_and_resumes_identical(
        self, tmp_path, model_path
    ):
        baseline = launch(
            "dse", "sweep", "gamess", "--model", model_path, *SWEEP_AXES, "--json"
        )
        out, err = baseline.communicate(timeout=300)
        assert baseline.returncode == 0, err
        expected_front = front_of(out)

        ckpt = tmp_path / "sweep.ckpt.npz"
        interrupted = launch(
            "dse", "sweep", "gamess", "--model", model_path, *SWEEP_AXES, "--json",
            "--chunk-size", "1024", "--checkpoint", str(ckpt),
            "--checkpoint-interval", "1",
        )
        rc, out, err = interrupt_once_checkpointed(
            interrupted, ckpt.exists
        )
        assert rc == EXIT_SWEEP_INTERRUPTED, (out, err)
        assert "Traceback" not in err
        assert ckpt.exists()

        resumed = launch(
            "dse", "sweep", "gamess", "--model", model_path, *SWEEP_AXES, "--json",
            "--chunk-size", "1024", "--checkpoint", str(ckpt),
            "--resume",
        )
        out, err = resumed.communicate(timeout=300)
        assert resumed.returncode == 0, err
        assert front_of(out) == expected_front


class TestSuiteInterrupt:
    def test_sigint_exits_4_with_journal_and_resume_finishes(
        self, tmp_path
    ):
        journal = tmp_path / "suite.json"
        cache = tmp_path / "cache"
        names = ["gamess", "mcf", "milc", "soplex", "lbm", "omnetpp"]
        only = [arg for name in names for arg in ("--only", name)]

        def journalled_progress():
            if not journal.exists():
                return False
            try:
                return bool(
                    json.loads(journal.read_text()).get("completed")
                )
            except (ValueError, OSError):
                return False  # mid-rewrite; poll again

        interrupted = launch(
            "suite", *only, "--macros", "200",
            "--checkpoint", str(journal), "--cache-dir", str(cache),
        )
        rc, out, err = interrupt_once_checkpointed(
            interrupted, journalled_progress
        )
        assert rc == EXIT_SWEEP_INTERRUPTED, (out, err)
        assert "Traceback" not in err
        completed = json.loads(journal.read_text())["completed"]
        assert completed  # flushed before exiting

        resumed = launch(
            "suite", *only, "--macros", "200",
            "--checkpoint", str(journal), "--cache-dir", str(cache),
            "--resume",
        )
        out, err = resumed.communicate(timeout=300)
        assert resumed.returncode == 0, err
        assert f"{len(names)}/{len(names)} workloads" in out
        assert "resumed" in out
