"""Golden end-to-end regression test.

One checked-in fixture pins the complete pipeline — workload generation,
timing simulation, graph construction, RpStacks generation, bottleneck
ranking — to exact expected numbers.  Any change to the simulator, the
builder or the reducer that shifts results *at all* fails this test
loudly instead of drifting silently; an intentional behaviour change
must regenerate the fixture and say so in review (see the regeneration
snippet below).

Regenerate after an intentional change with::

    PYTHONPATH=src python - <<'PY'
    import json, pathlib
    from repro.dse.pipeline import analyze
    from repro.workloads.suite import make_workload
    g = json.loads(pathlib.Path(
        "tests/integration/golden/gamess_300.json").read_text())
    w = make_workload(g["workload"], g["macros"], seed=g["seed"])
    s = analyze(w)
    top = s.rpstacks.bottlenecks(s.config.latency, top=3)
    g.update(
        num_uops=len(w),
        baseline_cycles=s.baseline_result.cycles,
        num_segments=s.rpstacks.num_segments,
        num_paths=s.rpstacks.num_paths,
        top3_bottlenecks=[l for l, _ in top],
        top3_cpi_shares=[round(v, 12) for _, v in top],
        predicted_baseline_cycles=s.rpstacks.predict_cycles(s.config.latency),
        cp1_baseline_cycles=s.cp1.baseline_cycles,
    )
    pathlib.Path("tests/integration/golden/gamess_300.json").write_text(
        json.dumps(g, indent=2) + "\n")
    PY
"""

import json
import pathlib

import pytest

from repro.dse.pipeline import analyze
from repro.workloads.suite import make_workload

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "gamess_300.json"
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def session(golden):
    workload = make_workload(
        golden["workload"], golden["macros"], seed=golden["seed"]
    )
    return analyze(workload)


def test_workload_generation_is_pinned(golden, session):
    assert len(session.workload) == golden["num_uops"]


def test_baseline_simulation_is_pinned(golden, session):
    assert session.baseline_result.cycles == golden["baseline_cycles"]


def test_rpstacks_shape_is_pinned(golden, session):
    assert session.rpstacks.num_segments == golden["num_segments"]
    assert session.rpstacks.num_paths == golden["num_paths"]


def test_predictions_are_pinned(golden, session):
    base = session.config.latency
    assert session.rpstacks.predict_cycles(base) == golden[
        "predicted_baseline_cycles"
    ]
    assert session.cp1.baseline_cycles == golden["cp1_baseline_cycles"]


def test_top3_bottlenecks_are_pinned(golden, session):
    top = session.rpstacks.bottlenecks(session.config.latency, top=3)
    assert [label for label, _ in top] == golden["top3_bottlenecks"]
    assert [round(value, 12) for _, value in top] == golden[
        "top3_cpi_shares"
    ]


def test_golden_survives_a_cache_round_trip(golden, tmp_path):
    """The cache serves the same pinned numbers it was fed."""
    from repro.runtime.cache import ArtifactCache

    workload = make_workload(
        golden["workload"], golden["macros"], seed=golden["seed"]
    )
    cache = ArtifactCache(tmp_path / "cache")
    analyze(workload, cache=cache)
    warm = analyze(workload, cache=cache)
    assert cache.hits == 1
    assert warm.baseline_result.cycles == golden["baseline_cycles"]
    assert warm.rpstacks.num_paths == golden["num_paths"]
    top = warm.rpstacks.bottlenecks(warm.config.latency, top=3)
    assert [label for label, _ in top] == golden["top3_bottlenecks"]
