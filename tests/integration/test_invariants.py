"""Property-based whole-pipeline invariants over random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import baseline_config
from repro.common.events import LATENCY_DOMAIN
from repro.core.generator import generate_rpstacks
from repro.graphmodel.builder import build_graph
from repro.simulator.core import simulate
from repro.workloads.generator import WorkloadSpec, generate

workload_specs = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    num_macro_ops=st.integers(min_value=30, max_value=90),
    p_load=st.floats(min_value=0.0, max_value=0.3),
    p_store=st.floats(min_value=0.0, max_value=0.15),
    p_fp_add=st.floats(min_value=0.0, max_value=0.2),
    p_fp_mul=st.floats(min_value=0.0, max_value=0.2),
    p_branch=st.floats(min_value=0.0, max_value=0.15),
    pointer_chase_fraction=st.floats(min_value=0.0, max_value=0.5),
    dep_distance_mean=st.floats(min_value=1.0, max_value=20.0),
    working_set_bytes=st.sampled_from([4096, 65536, 8 << 20]),
    code_footprint_bytes=st.sampled_from([1024, 65536]),
)


@st.composite
def cases(draw):
    spec = draw(workload_specs)
    seed = draw(st.integers(min_value=0, max_value=1000))
    return spec, seed


@given(case=cases())
@settings(max_examples=15, deadline=None)
def test_property_pipeline_chain_invariants(case):
    """For any generated workload:

    1. simulation terminates with in-order commits;
    2. the graph is acyclic and its baseline longest path tracks the
       simulator within 15%;
    3. unsegmented RpStacks reproduce the critical path exactly at the
       baseline configuration.
    """
    spec, seed = case
    workload = generate(spec, seed=seed)
    config = baseline_config()
    result = simulate(workload, config)

    commits = [u.t_commit for u in result.uops]
    assert all(b >= a for a, b in zip(commits, commits[1:]))

    graph = build_graph(result)
    predicted = graph.longest_path_length(config.latency)
    assert predicted == pytest.approx(result.cycles, rel=0.15)

    model = generate_rpstacks(
        graph, config.latency, segment_length=10 ** 9
    )
    assert model.predict_cycles(config.latency) == pytest.approx(predicted)


@given(
    case=cases(),
    event=st.sampled_from(list(LATENCY_DOMAIN)),
    cycles=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=15, deadline=None)
def test_property_rpstacks_lower_bounds_graph(case, event, cycles):
    """Unsegmented RpStacks predictions never exceed the exact graph
    longest path, at any latency point (reduction only discards paths)."""
    spec, seed = case
    workload = generate(spec, seed=seed)
    config = baseline_config()
    result = simulate(workload, config)
    graph = build_graph(result)
    model = generate_rpstacks(graph, config.latency, segment_length=10 ** 9)
    latency = config.latency.with_overrides({event: cycles})
    assert (
        model.predict_cycles(latency)
        <= graph.longest_path_length(latency) + 1e-6
    )
