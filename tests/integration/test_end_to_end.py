"""Cross-module integration tests: the full paper pipeline."""

import pytest

from repro.common.events import EventType
from repro.dse.designspace import DesignSpace
from repro.dse.pipeline import analyze
from repro.dse.validate import (
    bottleneck_reduction_scenarios,
    validate_predictors,
)
from repro.workloads.suite import make_workload


@pytest.fixture(scope="module")
def sessions():
    return {
        name: analyze(make_workload(name, 250))
        for name in ("gamess", "mcf", "bzip2")
    }


class TestAccuracyOrdering:
    def test_rpstacks_accurate_on_gentle_scenarios(self, sessions):
        for name, session in sessions.items():
            base = session.config.latency
            bottlenecks = [
                event
                for event, _cpi in sorted(
                    session.cp1.cpi_stack().items(), key=lambda kv: -kv[1]
                )
                if event not in (EventType.BASE, EventType.BR_MISP)
            ][:2]
            scenarios = bottleneck_reduction_scenarios(
                base, bottlenecks, fraction=0.5
            )
            report = validate_predictors(
                session.machine, session.predictors(), scenarios
            )
            assert report.mean_abs_error("rpstacks") < 10.0, name

    def test_rpstacks_never_worse_than_cp1_overall(self, sessions):
        """Aggregate Fig 11 relationship: mean RpStacks error <= mean CP1
        error plus a small tolerance (they coincide when no path switch
        occurs; RpStacks wins when one does)."""
        total_rp, total_cp1 = 0.0, 0.0
        for session in sessions.values():
            base = session.config.latency
            bottlenecks = [
                event
                for event, _cpi in sorted(
                    session.cp1.cpi_stack().items(), key=lambda kv: -kv[1]
                )
                if event not in (EventType.BASE, EventType.BR_MISP)
            ][:2]
            scenarios = bottleneck_reduction_scenarios(
                base, bottlenecks, fraction=0.25
            )
            report = validate_predictors(
                session.machine, session.predictors(), scenarios
            )
            total_rp += report.mean_abs_error("rpstacks")
            total_cp1 += report.mean_abs_error("cp1")
        assert total_rp <= total_cp1 + 3.0


class TestMemoryBoundWorkload:
    def test_mcf_bottleneck_is_memory(self, sessions):
        session = sessions["mcf"]
        top_event, _share = session.rpstacks.bottlenecks(
            session.config.latency, top=1
        )[0]
        assert top_event in ("MemD", "DTLB", "L2D")

    def test_memory_optimisation_prediction(self, sessions):
        session = sessions["mcf"]
        base = session.config.latency
        faster = base.with_overrides({EventType.MEM_D: 66})
        predicted = session.rpstacks.predict_cycles(faster)
        simulated = session.simulate(faster).cycles
        assert predicted == pytest.approx(simulated, rel=0.05)


class TestExplorationLoop:
    def test_target_designs_validate_in_simulator(self, sessions):
        session = sessions["gamess"]
        space = DesignSpace.from_mapping(
            {
                EventType.L1D: [1, 2, 4],
                EventType.FP_ADD: [2, 4, 6],
                EventType.FP_MUL: [2, 4, 6],
            }
        )
        target = session.baseline_cpi * 0.9
        result = session.explore(space, target_cpi=target)
        assert result.num_meeting_target > 0
        # Validate the three cheapest candidates against the simulator.
        for candidate in result.pareto_front()[:3]:
            simulated = session.simulate(candidate.latency).cpi
            assert simulated <= target * 1.12, candidate.describe()

    def test_exploration_is_cheap_after_analysis(self, sessions):
        import time

        session = sessions["gamess"]
        space = DesignSpace.from_mapping(
            {
                EventType.L1D: [1, 2, 3, 4],
                EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
                EventType.FP_MUL: [1, 2, 3, 4, 5, 6],
                EventType.LD: [1, 2],
            }
        )
        assert space.num_points == 288
        start = time.perf_counter()
        result = session.explore(space)
        elapsed = time.perf_counter() - start
        assert result.num_points == 288
        assert elapsed < 1.0  # hundreds of points in well under a second


class TestStackConsistency:
    def test_representative_stack_prices_to_prediction(self, sessions):
        for name, session in sessions.items():
            base = session.config.latency
            stack = session.rpstacks.representative_stack(base)
            assert stack.cycles(base) == pytest.approx(
                session.rpstacks.predict_cycles(base)
            ), name

    def test_bottleneck_shares_are_cpi_fractions(self, sessions):
        session = sessions["gamess"]
        shares = session.rpstacks.bottlenecks(session.config.latency, top=5)
        total_cpi = session.rpstacks.predict_cpi(session.config.latency)
        assert sum(value for _name, value in shares) <= total_cpi + 1e-9
