"""Cookbook workflows: realistic multi-step usage, chained end to end."""

import pytest

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.core.generator import generate_rpstacks
from repro.core.io import load_model, save_model
from repro.dse.designspace import DesignSpace
from repro.dse.explorer import Explorer
from repro.dse.portfolio import PortfolioExplorer
from repro.dse.search import GreedyLatencySearch
from repro.graphmodel.builder import build_graph
from repro.simulator.machine import Machine
from repro.simulator.traceio import load_result, save_result
from repro.workloads.suite import make_workload


def test_archive_everything_then_explore_offline(tmp_path, gamess_session):
    """simulate -> archive trace -> archive model -> reload both in a
    'fresh process' and explore without touching the simulator."""
    trace_path = save_result(
        gamess_session.baseline_result, tmp_path / "run.npz"
    )
    model_path = save_model(
        gamess_session.rpstacks, tmp_path / "model.npz"
    )

    # "New process": only the archives are used.
    result = load_result(trace_path)
    model_from_trace = generate_rpstacks(
        build_graph(result), result.config.latency
    )
    model_from_archive = load_model(model_path)

    space = DesignSpace.from_mapping(
        {EventType.L1D: [1, 2, 4], EventType.FP_ADD: [1, 3, 6]}
    )
    sweep_a = Explorer(model_from_trace).explore(space)
    sweep_b = Explorer(model_from_archive).explore(space)
    cpis_a = [c.predicted_cpi for c in sweep_a.candidates]
    cpis_b = [c.predicted_cpi for c in sweep_b.candidates]
    assert cpis_a == pytest.approx(cpis_b)


def test_search_then_validate_workflow(gamess_session):
    """greedy search on the model -> validate the endpoint by
    re-simulation -> error within the method's band."""
    base = gamess_session.config.latency
    search = GreedyLatencySearch(
        gamess_session.rpstacks,
        {
            EventType.L1D: [1, 2, 3, 4],
            EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
            EventType.FP_MUL: [1, 2, 3, 4, 5, 6],
        },
        beam=2,
    )
    target = gamess_session.baseline_cpi * 0.75
    result = search.run(base, target_cpi=target)
    assert result.target_met
    simulated = gamess_session.simulate(result.final).cpi
    assert result.predicted_cpi == pytest.approx(simulated, rel=0.12)


def test_portfolio_from_archived_models(tmp_path):
    """Two workloads analysed separately (e.g. on different machines),
    models archived, portfolio assembled purely from the archives."""
    paths = {}
    expected = {}
    space = DesignSpace.from_mapping(
        {EventType.L1D: [1, 2, 4], EventType.MEM_D: [66, 133]}
    )
    for name in ("gamess", "mcf"):
        workload = make_workload(name, 150)
        machine = Machine(workload)
        result = machine.simulate()
        model = generate_rpstacks(
            build_graph(result), result.config.latency
        )
        paths[name] = save_model(model, tmp_path / f"{name}.npz")
        expected[name] = model.predict_many(space.points())

    models = {name: load_model(path) for name, path in paths.items()}
    portfolio = PortfolioExplorer(models).explore(space)
    assert portfolio.num_points == 6
    best = portfolio.best()
    for name in models:
        assert dict(best.per_workload_cpi)[name] > 0


def test_structure_latency_model_consistency():
    """The same workload analysed under two structures gives different
    models, and each predicts its own structure's re-simulation."""
    from repro.common.presets import big_core, little_core
    from repro.dse.pipeline import analyze

    workload = make_workload("bzip2", 150)
    probe_overrides = {EventType.L2D: 6, EventType.DTLB: 10}
    for config in (little_core(), big_core()):
        session = analyze(workload, config=config)
        probe = session.config.latency.with_overrides(probe_overrides)
        predicted = session.rpstacks.predict_cpi(probe)
        simulated = session.simulate(probe).cpi
        assert predicted == pytest.approx(simulated, rel=0.12)
