"""Shared fixtures: small deterministic workloads and analysis sessions.

Session-scoped where construction is expensive; tests must treat these
as read-only (build your own object if you need to mutate).
"""

from __future__ import annotations

import pytest

from repro.common.config import baseline_config
from repro.dse.pipeline import analyze
from repro.simulator.machine import Machine
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.suite import make_workload

#: Macro-op count that keeps full-pipeline tests fast but non-trivial.
SMALL = 200


@pytest.fixture(scope="session")
def tiny_workload():
    """A small mixed workload exercising every op class."""
    spec = WorkloadSpec(
        name="tiny-mixed",
        num_macro_ops=120,
        p_load=0.25,
        p_store=0.10,
        p_fp_add=0.10,
        p_fp_mul=0.08,
        p_fp_div=0.02,
        p_int_mul=0.04,
        p_int_div=0.01,
        p_branch=0.12,
        working_set_bytes=8 * 1024,
        code_footprint_bytes=4 * 1024,
    )
    return generate(spec, seed=7)


@pytest.fixture(scope="session")
def gamess_workload():
    return make_workload("gamess", SMALL)


@pytest.fixture(scope="session")
def mcf_workload():
    return make_workload("mcf", SMALL)


@pytest.fixture(scope="session")
def tiny_machine(tiny_workload):
    return Machine(tiny_workload, baseline_config())


@pytest.fixture(scope="session")
def tiny_result(tiny_machine):
    return tiny_machine.simulate()


@pytest.fixture(scope="session")
def gamess_session(gamess_workload):
    """Full analysis session (simulation + graph + RpStacks + baselines)."""
    return analyze(gamess_workload)


@pytest.fixture(scope="session")
def tiny_session(tiny_workload):
    return analyze(tiny_workload)
