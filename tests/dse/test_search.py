"""Greedy latency-search tests."""

import pytest

from repro.common.config import LatencyConfig
from repro.common.events import EventType
from repro.dse.search import GreedyLatencySearch


class LinearModel:
    """CPI = 0.1 * L1D + 0.05 * FP_ADD (separable — greedy-friendly)."""

    def predict_cpi(self, latency):
        return (
            0.1 * latency[EventType.L1D]
            + 0.05 * latency[EventType.FP_ADD]
        )


CANDIDATES = {
    EventType.L1D: [1, 2, 3, 4],
    EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
}


class TestGreedy:
    def test_reaches_reachable_target(self):
        search = GreedyLatencySearch(LinearModel(), CANDIDATES)
        base = LatencyConfig()
        result = search.run(base, target_cpi=0.5)
        assert result.target_met
        assert result.predicted_cpi <= 0.5

    def test_stops_when_target_unreachable(self):
        search = GreedyLatencySearch(LinearModel(), CANDIDATES)
        result = search.run(LatencyConfig(), target_cpi=0.01)
        # Floor: L1D=1, FP_ADD=1 -> 0.15.
        assert not result.target_met
        assert result.predicted_cpi == pytest.approx(0.15)
        assert result.final[EventType.L1D] == 1
        assert result.final[EventType.FP_ADD] == 1

    def test_steps_descend_monotonically(self):
        search = GreedyLatencySearch(LinearModel(), CANDIDATES)
        result = search.run(LatencyConfig(), target_cpi=0.2)
        cpis = [step.predicted_cpi for step in result.steps]
        assert all(b < a for a, b in zip(cpis, cpis[1:]))

    def test_moves_are_single_notch(self):
        search = GreedyLatencySearch(LinearModel(), CANDIDATES)
        result = search.run(LatencyConfig(), target_cpi=0.2)
        for step in result.steps:
            faster = [
                v
                for v in CANDIDATES[step.event]
                if v < step.from_cycles
            ]
            assert step.to_cycles == max(faster)

    def test_respects_max_steps(self):
        search = GreedyLatencySearch(LinearModel(), CANDIDATES)
        result = search.run(LatencyConfig(), target_cpi=0.0, max_steps=2)
        assert result.num_steps == 2

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(ValueError):
            GreedyLatencySearch(LinearModel(), {EventType.L1D: []})

    def test_bad_beam_rejected(self):
        with pytest.raises(ValueError):
            GreedyLatencySearch(LinearModel(), CANDIDATES, beam=0)


class TestOnRealModel:
    def test_search_agrees_with_exhaustive_sweep(self, gamess_session):
        """On an enumerable space, greedy must land within a few percent
        of the exhaustive optimum's cost."""
        from repro.dse.designspace import DesignSpace
        from repro.dse.explorer import Explorer

        model = gamess_session.rpstacks
        base = gamess_session.config.latency
        candidates = {
            EventType.L1D: [1, 2, 3, 4],
            EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
            EventType.FP_MUL: [1, 2, 3, 4, 5, 6],
        }
        target = gamess_session.baseline_cpi * 0.8

        exhaustive = Explorer(model).explore(
            DesignSpace.from_mapping(candidates, base=base),
            target_cpi=target,
        )
        best = exhaustive.best()

        search = GreedyLatencySearch(model, candidates, beam=2)
        result = search.run(base, target_cpi=target)
        assert result.target_met
        assert result.total_cost <= best.cost * 1.5 + 0.5

    def test_search_uses_far_fewer_evaluations_than_enumeration(
        self, gamess_session
    ):
        model = gamess_session.rpstacks
        base = gamess_session.config.latency
        candidates = {
            event: list(range(1, base[event] + 1))
            for event in (
                EventType.L1D,
                EventType.FP_ADD,
                EventType.FP_MUL,
                EventType.L2D,
                EventType.LD,
            )
        }
        space_size = 1
        for values in candidates.values():
            space_size *= len(values)
        search = GreedyLatencySearch(model, candidates)
        result = search.run(
            base, target_cpi=gamess_session.baseline_cpi * 0.7
        )
        assert result.target_met
        assert search.evaluations < space_size / 10


class InteractionTrapModel:
    """CPI drops only when L1D *and* FP_ADD both reach one cycle: each
    single move is CPI-neutral, so plain greedy is stuck at the base
    point and only the lookahead beam can see the paired gain."""

    def predict_cpi(self, latency):
        if (
            latency[EventType.L1D] == 1
            and latency[EventType.FP_ADD] == 1
        ):
            return 0.5
        return 1.0


class TestBeamEscapesNeutralFirstMove:
    CANDIDATES = {
        EventType.L1D: [1, 2],
        EventType.FP_ADD: [1, 2],
    }
    BASE = LatencyConfig().with_overrides(
        {EventType.L1D: 2, EventType.FP_ADD: 2}
    )

    def test_beam_accepts_neutral_move_with_helping_followup(self):
        search = GreedyLatencySearch(
            InteractionTrapModel(), self.CANDIDATES, beam=2
        )
        result = search.run(self.BASE, target_cpi=0.6)
        assert result.target_met
        assert result.predicted_cpi == pytest.approx(0.5)
        assert result.num_steps == 2

    def test_plain_greedy_still_breaks_on_neutral_moves(self):
        search = GreedyLatencySearch(InteractionTrapModel(), self.CANDIDATES)
        result = search.run(self.BASE, target_cpi=0.6)
        assert not result.target_met
        assert result.num_steps == 0

    def test_beam_still_stops_when_nothing_helps_at_depth(self):
        class FlatModel:
            def predict_cpi(self, latency):
                return 1.0

        search = GreedyLatencySearch(FlatModel(), self.CANDIDATES, beam=2)
        result = search.run(self.BASE, target_cpi=0.6)
        assert not result.target_met
        assert result.num_steps == 0
