"""Portfolio (multi-workload) exploration tests."""

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.designspace import DesignSpace
from repro.dse.portfolio import PortfolioExplorer


def model_for(event: EventType, units: float = 10.0, num_uops: int = 100):
    """A one-stack model whose CPI depends only on one event."""
    stack = np.zeros((1, NUM_EVENTS))
    stack[0, EventType.BASE] = 50
    stack[0, event] = units
    return RpStacksModel(
        [stack], baseline=LatencyConfig(), num_uops=num_uops
    )


@pytest.fixture
def models():
    return {
        "fp-app": model_for(EventType.FP_ADD),
        "mem-app": model_for(EventType.L1D),
    }


@pytest.fixture
def space():
    return DesignSpace.from_mapping(
        {EventType.FP_ADD: [1, 3, 6], EventType.L1D: [1, 2, 4]}
    )


class TestWeights:
    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            PortfolioExplorer({})

    def test_weights_normalised(self, models):
        explorer = PortfolioExplorer(
            models, weights={"fp-app": 3.0, "mem-app": 1.0}
        )
        assert explorer.weights["fp-app"] == pytest.approx(0.75)
        assert sum(explorer.weights.values()) == pytest.approx(1.0)

    def test_non_positive_weights_rejected(self, models):
        with pytest.raises(ValueError):
            PortfolioExplorer(
                models, weights={"fp-app": 0.0, "mem-app": 0.0}
            )


class TestExploration:
    def test_weighted_cpi_is_the_mixture(self, models, space):
        explorer = PortfolioExplorer(models)
        result = explorer.explore(space)
        assert result.num_points == 9
        for candidate in result.candidates:
            per = dict(candidate.per_workload_cpi)
            assert candidate.weighted_cpi == pytest.approx(
                0.5 * per["fp-app"] + 0.5 * per["mem-app"]
            )

    def test_weight_shifts_the_winner(self, models, space):
        fp_heavy = PortfolioExplorer(
            models, weights={"fp-app": 10.0, "mem-app": 1.0}
        ).explore(space)
        mem_heavy = PortfolioExplorer(
            models, weights={"fp-app": 1.0, "mem-app": 10.0}
        ).explore(space)
        # At equal cost budgets, the fp-heavy mix prefers spending on
        # FP_ADD, the mem-heavy mix on L1D: compare the best candidate
        # among single-optimisation designs.
        def best_single(result, event, other):
            return min(
                (
                    c
                    for c in result.candidates
                    if c.latency[other] == LatencyConfig()[other]
                ),
                key=lambda c: c.weighted_cpi,
            )

        fp_choice = min(
            fp_heavy.candidates, key=lambda c: c.weighted_cpi + c.cost / 100
        )
        mem_choice = min(
            mem_heavy.candidates, key=lambda c: c.weighted_cpi + c.cost / 100
        )
        assert fp_choice.latency[EventType.FP_ADD] == 1
        assert mem_choice.latency[EventType.L1D] == 1

    def test_target_filters(self, models, space):
        explorer = PortfolioExplorer(models)
        everything = explorer.explore(space)
        floor = min(c.weighted_cpi for c in everything.candidates)
        filtered = explorer.explore(
            space, target_weighted_cpi=floor + 1e-9
        )
        assert 1 <= len(filtered.candidates) < len(everything.candidates)

    def test_per_workload_ceiling(self, models, space):
        explorer = PortfolioExplorer(models)
        result = explorer.explore(
            space, per_workload_ceiling={"mem-app": 0.6}
        )
        for candidate in result.candidates:
            assert dict(candidate.per_workload_cpi)["mem-app"] <= 0.6

    def test_best_and_pareto(self, models, space):
        result = PortfolioExplorer(models).explore(space)
        best = result.best()
        assert best.cost == min(c.cost for c in result.candidates)
        front = result.pareto_front()
        cpis = [c.weighted_cpi for c in front]
        assert cpis == sorted(cpis, reverse=True)

    def test_empty_result_best_raises(self, models, space):
        result = PortfolioExplorer(models).explore(
            space, target_weighted_cpi=0.0
        )
        with pytest.raises(ValueError):
            result.best()


class TestWithRealModels(object):
    def test_joint_design_validates_on_both_workloads(
        self, gamess_session, tiny_session
    ):
        models = {
            "gamess": gamess_session.rpstacks,
            "tiny": tiny_session.rpstacks,
        }
        space = DesignSpace.from_mapping(
            {
                EventType.L1D: [1, 2, 4],
                EventType.FP_ADD: [1, 3, 6],
            }
        )
        result = PortfolioExplorer(models).explore(space)
        best = min(result.candidates, key=lambda c: c.weighted_cpi)
        for session, name in (
            (gamess_session, "gamess"),
            (tiny_session, "tiny"),
        ):
            predicted = dict(best.per_workload_cpi)[name]
            simulated = session.simulate(best.latency).cpi
            assert predicted == pytest.approx(simulated, rel=0.12)
