"""Overhead-accounting tests (Fig 2b / Fig 13 machinery)."""

import pytest

from repro.dse.literature import (
    LITERATURE_MIPS,
    MethodSpeed,
    acceleration_method_speeds,
)
from repro.dse.overhead import (
    OverheadProfile,
    exploration_curves,
    measure_overhead,
)


def profile(sim=1.0, build=0.2, gen=0.5, eval_=0.0001, reeval=0.05):
    return OverheadProfile(
        workload_name="w",
        num_uops=1000,
        simulate_seconds=sim,
        graph_build_seconds=build,
        rpstacks_generate_seconds=gen,
        rpstacks_eval_seconds=eval_,
        graph_reeval_seconds=reeval,
    )


class TestMethodSpeed:
    def test_exploration_time_is_affine(self):
        method = MethodSpeed("m", setup_seconds=2.0, per_point_seconds=0.5)
        assert method.exploration_seconds(0) == 2.0
        assert method.exploration_seconds(10) == 7.0

    def test_negative_points_rejected(self):
        with pytest.raises(ValueError):
            MethodSpeed("m", 0, 1).exploration_seconds(-1)

    def test_literature_table_has_expected_methods(self):
        assert set(LITERATURE_MIPS) == {
            "native", "marssx86", "graphite", "sniper", "fast",
        }
        # Ordering sanity: native > fast > graphite > sniper > marss.
        assert (
            LITERATURE_MIPS["native"]
            > LITERATURE_MIPS["fast"]
            > LITERATURE_MIPS["graphite"]
            > LITERATURE_MIPS["sniper"]
            > LITERATURE_MIPS["marssx86"]
        )

    def test_acceleration_speeds_scale_with_instructions(self):
        short = acceleration_method_speeds(1_000_000)
        long = acceleration_method_speeds(2_000_000)
        for a, b in zip(short, long):
            assert b.per_point_seconds == pytest.approx(
                2 * a.per_point_seconds
            )


class TestOverheadProfile:
    def test_rpstacks_flat_simulator_linear(self):
        p = profile()
        curves = exploration_curves(p, design_points=(1, 10, 100))
        sim = curves["simulator"]
        rp = curves["rpstacks"]
        assert sim[2] == pytest.approx(100 * sim[0])
        # RpStacks total barely moves with the point count.
        assert rp[2] - rp[0] < 0.1

    def test_crossover_formula(self):
        p = profile(sim=1.0, build=0.2, gen=0.5, eval_=0.0)
        # setup = 1.7; gain per point = 1.0 -> crossover at 1.7 points.
        assert p.crossover_points() == pytest.approx(1.7)

    def test_crossover_infinite_when_eval_not_cheaper(self):
        p = profile(sim=0.001, eval_=0.01)
        assert p.crossover_points() == float("inf")

    def test_speedup_grows_with_points(self):
        p = profile()
        assert p.speedup(1000) > p.speedup(100) > p.speedup(10)

    def test_graph_reeval_sits_between(self):
        p = profile()
        points = 1000
        sim_time = p.simulator_method().exploration_seconds(points)
        reeval_time = p.graph_reeval_method().exploration_seconds(points)
        rp_time = p.rpstacks_method().exploration_seconds(points)
        assert rp_time < reeval_time < sim_time


class TestMeasurement:
    def test_measure_on_real_workload(self, tiny_workload):
        p = measure_overhead(tiny_workload, eval_points=8, reeval_points=1)
        assert p.num_uops == len(tiny_workload)
        assert p.simulate_seconds > 0
        assert p.graph_build_seconds > 0
        assert p.rpstacks_generate_seconds > 0
        # The core speed claim: per-point evaluation is much cheaper
        # than re-simulation and than graph re-evaluation.
        assert p.rpstacks_eval_seconds < p.simulate_seconds / 50
        assert p.rpstacks_eval_seconds < p.graph_reeval_seconds
        assert p.crossover_points() < 100
