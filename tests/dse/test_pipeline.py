"""Analysis-session facade tests."""

import pytest

from repro.common.config import CoreConfig, MicroarchConfig
from repro.common.events import EventType
from repro.dse.pipeline import analyze


def test_session_components_are_consistent(tiny_session):
    session = tiny_session
    assert session.baseline_result.workload is session.workload
    assert session.graph.num_uops == len(session.workload)
    assert session.rpstacks.num_uops == len(session.workload)
    assert session.cp1.num_uops == len(session.workload)


def test_baseline_cpi_matches_simulation(tiny_session):
    assert tiny_session.baseline_cpi == tiny_session.baseline_result.cpi


def test_predictor_registry(tiny_session):
    predictors = tiny_session.predictors()
    assert set(predictors) == {"rpstacks", "cp1", "fmt"}
    base = tiny_session.config.latency
    for predictor in predictors.values():
        assert predictor.predict_cycles(base) > 0


def test_all_predictors_close_at_baseline(tiny_session):
    base = tiny_session.config.latency
    truth = tiny_session.baseline_result.cycles
    for name, predictor in tiny_session.predictors().items():
        predicted = predictor.predict_cycles(base)
        assert predicted == pytest.approx(truth, rel=0.10), name


def test_simulate_delegates_to_machine(tiny_session):
    latency = tiny_session.config.latency.with_overrides(
        {EventType.L1D: 2}
    )
    result = tiny_session.simulate(latency)
    assert result.config.latency == latency


def test_structure_config_propagates(tiny_workload):
    config = MicroarchConfig(core=CoreConfig(branch_predictor="taken"))
    session = analyze(tiny_workload, config=config)
    assert session.config.core.branch_predictor == "taken"
    # A weaker predictor means at least as many mispredictions.
    default = analyze(tiny_workload)
    assert (
        session.baseline_result.stats["branch_mispredictions"]
        >= default.baseline_result.stats["branch_mispredictions"]
    )


def test_generation_parameters_forwarded(tiny_workload):
    session = analyze(tiny_workload, segment_length=40, max_paths=4)
    expected_segments = (len(tiny_workload) + 39) // 40
    assert session.rpstacks.num_segments == expected_segments
    for stacks in session.rpstacks.segment_stacks:
        assert stacks.shape[0] <= 4
