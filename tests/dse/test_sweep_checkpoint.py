"""Checkpoint/resume semantics of the streaming sweep engine.

The load-bearing claim: a sweep killed at *any* chunk boundary and
resumed from its snapshot produces a candidate set bit-identical to one
uninterrupted pass (prune confluence), and a snapshot recorded under
different inputs is rejected loudly, naming the drifted field.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.designspace import DesignSpace
from repro.dse.sweep import sweep_space
from repro.runtime.resilience import (
    CheckpointMismatchError,
    SweepCheckpoint,
    SweepInterrupted,
)


def vec(**units):
    out = np.zeros(NUM_EVENTS)
    for name, value in units.items():
        out[EventType[name]] = value
    return out


@pytest.fixture(scope="module")
def model():
    seg0 = np.stack([vec(FP_ADD=4, BASE=10), vec(L1D=5, LD=2, BASE=8)])
    seg1 = np.stack([vec(MEM_D=1, BASE=6), vec(L2D=7, BASE=20)])
    return RpStacksModel(
        [seg0, seg1], baseline=LatencyConfig(), num_uops=100
    )


@pytest.fixture(scope="module")
def space():
    return DesignSpace.from_mapping(
        {
            EventType.L1D: [1, 2, 3, 4],
            EventType.FP_ADD: [1, 2, 4, 6],
            EventType.MEM_D: [33, 66, 133],
            EventType.L2D: [3, 6, 12],
        }
    )


def candidate_key(result):
    return [
        (c.latency, c.predicted_cpi, c.cost) for c in result.candidates
    ]


class TestCheckpointedSweep:
    def test_checkpointing_does_not_change_the_answer(
        self, tmp_path, model, space
    ):
        plain = sweep_space(model, space, chunk_size=16)
        ckpt = tmp_path / "sweep.npz"
        checkpointed = sweep_space(
            model, space, chunk_size=16,
            checkpoint=ckpt, checkpoint_interval=2,
        )
        assert candidate_key(checkpointed) == candidate_key(plain)
        # The final snapshot records a completed run.
        final = SweepCheckpoint.load(ckpt)
        assert final.complete
        assert final.next_start == space.num_points

    def test_interrupt_then_resume_is_bit_identical(
        self, tmp_path, model, space
    ):
        plain = sweep_space(model, space, chunk_size=16, target_cpi=0.3)
        ckpt = tmp_path / "sweep.npz"
        with pytest.raises(SweepInterrupted) as exc:
            sweep_space(
                model, space, chunk_size=16, target_cpi=0.3,
                checkpoint=ckpt, checkpoint_interval=4,
                abort_after_chunks=5,
            )
        assert exc.value.chunks_done == 5
        assert exc.value.path == str(ckpt)
        snapshot = SweepCheckpoint.load(ckpt)
        assert snapshot.next_start == 5 * 16
        assert not snapshot.complete
        resumed = sweep_space(
            model, space, chunk_size=16, target_cpi=0.3,
            checkpoint=ckpt, resume=True,
        )
        assert candidate_key(resumed) == candidate_key(plain)
        assert resumed.num_meeting_target == plain.num_meeting_target

    def test_resume_with_missing_checkpoint_starts_fresh(
        self, tmp_path, model, space
    ):
        plain = sweep_space(model, space, chunk_size=16)
        result = sweep_space(
            model, space, chunk_size=16,
            checkpoint=tmp_path / "never-written.npz", resume=True,
        )
        assert candidate_key(result) == candidate_key(plain)

    def test_resuming_a_complete_checkpoint_prices_nothing_new(
        self, tmp_path, model, space
    ):
        ckpt = tmp_path / "sweep.npz"
        first = sweep_space(
            model, space, chunk_size=16, checkpoint=ckpt
        )
        again = sweep_space(
            model, space, chunk_size=16, checkpoint=ckpt, resume=True
        )
        assert candidate_key(again) == candidate_key(first)

    @settings(max_examples=25, deadline=None)
    @given(
        chunk_size=st.integers(min_value=1, max_value=60),
        abort_chunks=st.integers(min_value=1, max_value=400),
        interval=st.integers(min_value=1, max_value=8),
    )
    def test_resume_equivalence_at_any_chunk_boundary(
        self, tmp_path_factory, model, space, chunk_size, abort_chunks,
        interval,
    ):
        """Property: kill at an arbitrary boundary, resume, get the
        uninterrupted run's candidates bit-for-bit."""
        total_chunks = -(-space.num_points // chunk_size)
        abort_chunks = min(abort_chunks, total_chunks - 1)
        if abort_chunks < 1:
            return  # single-chunk space: nothing to interrupt
        plain = sweep_space(model, space, chunk_size=chunk_size)
        ckpt = tmp_path_factory.mktemp("ckpt") / "sweep.npz"
        with pytest.raises(SweepInterrupted):
            sweep_space(
                model, space, chunk_size=chunk_size,
                checkpoint=ckpt, checkpoint_interval=interval,
                abort_after_chunks=abort_chunks,
            )
        resumed = sweep_space(
            model, space, chunk_size=chunk_size,
            checkpoint=ckpt, resume=True,
        )
        assert candidate_key(resumed) == candidate_key(plain)


class TestStaleCheckpointRejection:
    """Every drifted input is caught end to end through sweep_space."""

    @pytest.fixture
    def interrupted(self, tmp_path, model, space):
        ckpt = tmp_path / "sweep.npz"
        with pytest.raises(SweepInterrupted):
            sweep_space(
                model, space, chunk_size=16, target_cpi=0.5,
                checkpoint=ckpt, checkpoint_interval=2,
                abort_after_chunks=4,
            )
        return ckpt

    def _resume(self, ckpt, predictor, space, **kwargs):
        options = dict(chunk_size=16, target_cpi=0.5)
        options.update(kwargs)
        return sweep_space(
            predictor, space, checkpoint=ckpt, resume=True, **options
        )

    def test_different_space_rejected(self, interrupted, model):
        other = DesignSpace.from_mapping({EventType.L1D: [1, 2]})
        with pytest.raises(
            CheckpointMismatchError, match="design space"
        ) as exc:
            self._resume(interrupted, model, other)
        assert exc.value.field == "design space"

    def test_different_model_rejected(self, interrupted, space, model):
        other = RpStacksModel(
            [stack * 3 for stack in model.segment_stacks],
            baseline=model.baseline,
            num_uops=model.num_uops,
        )
        with pytest.raises(CheckpointMismatchError, match="model") as exc:
            self._resume(interrupted, other, space)
        assert exc.value.field == "model"

    def test_different_chunk_size_rejected(
        self, interrupted, model, space
    ):
        with pytest.raises(
            CheckpointMismatchError, match="chunk size"
        ) as exc:
            self._resume(interrupted, model, space, chunk_size=32)
        assert exc.value.field == "chunk size"

    def test_different_target_rejected(self, interrupted, model, space):
        with pytest.raises(
            CheckpointMismatchError, match="target CPI"
        ) as exc:
            self._resume(interrupted, model, space, target_cpi=0.9)
        assert exc.value.field == "target CPI"

    def test_different_top_k_rejected(self, interrupted, model, space):
        with pytest.raises(
            CheckpointMismatchError, match="top-k"
        ) as exc:
            self._resume(interrupted, model, space, top_k=3)
        assert exc.value.field == "top-k cap"

    def test_different_cost_model_rejected(
        self, interrupted, model, space
    ):
        def flat_cost(point, base):
            return float(point[EventType.L1D])

        with pytest.raises(
            CheckpointMismatchError, match="cost model"
        ) as exc:
            self._resume(
                interrupted, model, space, cost_model=flat_cost
            )
        assert exc.value.field == "cost model"


class TestArgumentValidation:
    def test_checkpoint_requires_serial_run(self, tmp_path, model, space):
        with pytest.raises(ValueError, match="jobs=1"):
            sweep_space(
                model, space, jobs=2, checkpoint=tmp_path / "c.npz"
            )

    def test_resume_requires_checkpoint_path(self, model, space):
        with pytest.raises(ValueError, match="resume"):
            sweep_space(model, space, resume=True)

    def test_abort_requires_checkpoint(self, model, space):
        with pytest.raises(ValueError, match="abort_after_chunks"):
            sweep_space(model, space, abort_after_chunks=2)

    def test_bad_intervals_rejected(self, tmp_path, model, space):
        ckpt = tmp_path / "c.npz"
        with pytest.raises(ValueError, match="checkpoint_interval"):
            sweep_space(
                model, space, checkpoint=ckpt, checkpoint_interval=0
            )
        with pytest.raises(ValueError, match="abort_after_chunks"):
            sweep_space(
                model, space, checkpoint=ckpt, abort_after_chunks=0
            )
