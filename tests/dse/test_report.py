"""Report-rendering helper tests."""

from repro.common.config import LatencyConfig
from repro.common.events import EventType
from repro.core.stack import StallEventStack
from repro.dse.report import (
    ascii_bar,
    cpi_stack_rows,
    format_table,
    render_component_map,
    render_cpi_stack,
)


def test_format_table_aligns_columns():
    text = format_table(
        ["name", "value"], [["a", 1], ["long-name", 22]]
    )
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].index("value") == lines[2].index("1")


def test_ascii_bar_scales():
    assert ascii_bar(5, 10, width=10) == "#####"
    assert ascii_bar(20, 10, width=10) == "##########"  # clamped
    assert ascii_bar(0, 10, width=10) == ""
    assert ascii_bar(1, 0) == ""


def test_cpi_stack_rows_ordered_by_contribution():
    stack = StallEventStack.from_mapping(
        {EventType.MEM_D: 1, EventType.L1D: 2}
    )
    rows = cpi_stack_rows(stack, LatencyConfig(), num_uops=10)
    assert rows[0][0] == "MemD"
    assert rows[0][1] == 13.3


def test_render_cpi_stack_includes_total_and_bars():
    stack = StallEventStack.from_mapping({EventType.FP_ADD: 5})
    text = render_cpi_stack("demo", stack, LatencyConfig(), num_uops=10)
    assert "demo" in text
    assert "Fadd" in text
    assert "#" in text


def test_render_component_map():
    text = render_component_map({EventType.L1D: 0.5, EventType.BASE: 0.3})
    assert text.splitlines()[0].strip().startswith("L1D")
