"""Streaming sweep-engine tests: differential exactness, sharding,
memory bounds, edge cases and the chunked prediction property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.designspace import DesignSpace
from repro.dse.explorer import Explorer
from repro.dse.sweep import _prune, _shard_ranges, sweep_space


def vec(**units):
    out = np.zeros(NUM_EVENTS)
    for name, value in units.items():
        out[EventType[name]] = value
    return out


@pytest.fixture(scope="module")
def model():
    """A small hand-built model with winner switches in both segments."""
    seg0 = np.stack([vec(FP_ADD=4, BASE=10), vec(L1D=5, LD=2, BASE=8)])
    seg1 = np.stack([vec(MEM_D=1, BASE=6), vec(L2D=7, BASE=20)])
    return RpStacksModel(
        [seg0, seg1], baseline=LatencyConfig(), num_uops=100
    )


@pytest.fixture(scope="module")
def reference_space():
    return DesignSpace.from_mapping(
        {
            EventType.L1D: [1, 2, 3, 4],
            EventType.FP_ADD: [1, 2, 4, 6],
            EventType.MEM_D: [33, 66, 133],
            EventType.L2D: [3, 6, 12],
        }
    )


def front_key(result):
    return [
        (c.latency, c.predicted_cpi, c.cost) for c in result.pareto_front()
    ]


class TestDifferential:
    """The acceptance criterion: streamed == materialised, bit for bit."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 1000, 10**6])
    def test_front_bit_identical_across_chunk_sizes(
        self, model, reference_space, chunk_size
    ):
        seed = Explorer(model).explore(reference_space)
        swept = Explorer(model).sweep(
            reference_space, chunk_size=chunk_size
        )
        assert front_key(swept) == front_key(seed)

    @pytest.mark.parametrize("chunk_size", [13, 50])
    def test_front_bit_identical_with_target(
        self, model, reference_space, chunk_size
    ):
        target = model.predict_cpi(LatencyConfig()) * 0.9
        seed = Explorer(model).explore(reference_space, target_cpi=target)
        swept = Explorer(model).sweep(
            reference_space, target_cpi=target, chunk_size=chunk_size
        )
        assert front_key(swept) == front_key(seed)
        assert swept.num_meeting_target == seed.num_meeting_target

    def test_sharded_front_bit_identical(self, model, reference_space):
        seed = Explorer(model).explore(reference_space)
        swept = Explorer(model).sweep(
            reference_space, chunk_size=16, jobs=2
        )
        assert front_key(swept) == front_key(seed)
        assert swept.metrics.jobs == 2

    def test_candidate_set_independent_of_chunking(self, model, reference_space):
        """The conservative prune is confluent: any chunk/shard layout
        yields the identical surviving candidate list."""
        runs = [
            sweep_space(model, reference_space, chunk_size=5),
            sweep_space(model, reference_space, chunk_size=37),
            sweep_space(model, reference_space, chunk_size=16, jobs=3),
        ]
        keys = [
            [(c.latency, c.predicted_cpi, c.cost) for c in run.candidates]
            for run in runs
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_real_model_front_bit_identical(self, gamess_session):
        space = DesignSpace.from_mapping(
            {
                EventType.L1D: [1, 2, 4],
                EventType.FP_ADD: [1, 3, 6],
                EventType.FP_MUL: [1, 3, 6],
                EventType.L2D: [3, 6, 12],
            },
            base=gamess_session.config.latency,
        )
        target = gamess_session.baseline_cpi * 0.9
        seed = gamess_session.explore(space, target_cpi=target)
        swept = gamess_session.sweep(
            space, target_cpi=target, chunk_size=17
        )
        assert front_key(swept) == front_key(seed)
        assert swept.num_meeting_target == seed.num_meeting_target


class TestStreaming:
    def test_memory_stays_bounded(self, model):
        """A space much larger than any chunk never holds more than a
        few candidates at once — the whole point of the engine."""
        space = DesignSpace.from_mapping(
            {
                EventType.L1D: [1, 2, 3, 4],
                EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
                EventType.MEM_D: list(range(10, 134, 4)),
                EventType.L2D: list(range(1, 13)),
            }
        )
        assert space.num_points > 8000
        result = sweep_space(model, space, chunk_size=256)
        assert result.metrics.peak_candidates < 600
        assert result.metrics.peak_candidates >= len(result.candidates)

    def test_top_k_caps_the_candidate_set(self, model, reference_space):
        capped = sweep_space(model, reference_space, chunk_size=16, top_k=3)
        assert len(capped.candidates) <= 3
        full = sweep_space(model, reference_space, chunk_size=16)
        # The cap keeps the best-(cost, cpi) prefix of the full set.
        assert [
            (c.latency, c.cost) for c in capped.candidates
        ] == [(c.latency, c.cost) for c in full.candidates[:3]]

    def test_metrics_are_recorded(self, model, reference_space):
        result = sweep_space(model, reference_space, chunk_size=16)
        metrics = result.metrics
        assert metrics.num_points == reference_space.num_points
        assert metrics.num_chunks == -(-reference_space.num_points // 16)
        assert metrics.chunk_size == 16
        assert metrics.points_per_second > 0
        assert metrics.total_seconds > 0
        assert metrics.max_chunk_seconds >= metrics.mean_chunk_seconds > 0
        assert "points/s" in metrics.describe()

    def test_metrics_serialise_in_as_dict(self, model, reference_space):
        summary = sweep_space(model, reference_space, chunk_size=16).as_dict()
        assert summary["metrics"]["chunk_size"] == 16
        assert summary["num_points"] == reference_space.num_points


class TestFallbacks:
    def test_scalar_only_predictor_streams_correctly(self, reference_space):
        class Scalar:
            def predict_cpi(self, latency):
                return latency[EventType.L1D] / 4.0

        seed = Explorer(Scalar()).explore(reference_space)
        swept = Explorer(Scalar()).sweep(reference_space, chunk_size=16)
        assert front_key(swept) == front_key(seed)

    def test_custom_cost_model_applies_per_point(self, model, reference_space):
        def flat_cost(point, base):
            return float(point[EventType.L1D])

        seed = Explorer(model, cost_model=flat_cost).explore(reference_space)
        swept = Explorer(model, cost_model=flat_cost).sweep(
            reference_space, chunk_size=16
        )
        assert front_key(swept) == front_key(seed)


class TestEdgeCases:
    def test_single_point_space(self, model):
        space = DesignSpace.from_mapping({EventType.L1D: [4]})
        result = sweep_space(model, space, chunk_size=100)
        assert result.num_points == 1
        assert len(result.candidates) == 1
        assert result.candidates[0].predicted_cpi == pytest.approx(
            model.predict_cpi(space.base.with_overrides({EventType.L1D: 4}))
        )

    def test_axisless_space_prices_the_base_point(self, model):
        space = DesignSpace.from_mapping({})
        result = sweep_space(model, space)
        assert result.num_points == 1
        assert result.candidates[0].latency == space.base

    def test_empty_chunk_is_priced_as_empty(self, model):
        space = DesignSpace.from_mapping({EventType.L1D: [1, 2]})
        thetas = space.theta_matrix(1, 1)
        assert thetas.shape == (NUM_EVENTS, 0)
        assert model.predict_cycles_matrix(thetas).shape == (0,)

    def test_unreachable_target_keeps_nothing(self, model, reference_space):
        result = sweep_space(model, reference_space, target_cpi=1e-9)
        assert result.candidates == []
        assert result.num_meeting_target == 0
        assert result.pareto_front() == []

    def test_bad_arguments_rejected(self, model, reference_space):
        with pytest.raises(ValueError, match="chunk_size"):
            sweep_space(model, reference_space, chunk_size=0)
        with pytest.raises(ValueError, match="jobs"):
            sweep_space(model, reference_space, jobs=0)
        with pytest.raises(ValueError, match="top_k"):
            sweep_space(model, reference_space, top_k=0)

    def test_prune_keeps_front_reachable_points_only(self):
        indices = np.arange(4, dtype=np.int64)
        cpis = np.array([1.0, 0.8, 0.9, 0.5])
        costs = np.array([0.0, 1.0, 2.0, 3.0])
        kept, kept_cpis, _costs = _prune(indices, cpis, costs)
        assert list(kept) == [0, 1, 3]
        assert list(kept_cpis) == [1.0, 0.8, 0.5]

    def test_shard_ranges_cover_the_space_on_chunk_boundaries(self):
        ranges = _shard_ranges(1000, 64, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1000
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
            assert stop % 64 == 0


class TestChunkedPredictionProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        chunk=st.integers(min_value=1, max_value=40),
    )
    def test_chunked_matrix_matches_per_point(self, model, data, chunk):
        """predict_cycles_matrix over arbitrary chunkings is exactly the
        per-point predict_cycles."""
        axes = {
            EventType.L1D: data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=8),
                    min_size=1, max_size=4, unique=True,
                )
            ),
            EventType.MEM_D: data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=200),
                    min_size=1, max_size=4, unique=True,
                )
            ),
        }
        space = DesignSpace.from_mapping(axes)
        points = space.points()
        chunked = np.concatenate(
            [
                model.predict_cycles_matrix(space.theta_matrix(lo, hi))
                for lo, hi in space.iter_chunks(chunk)
            ]
        )
        singles = np.array([model.predict_cycles(p) for p in points])
        assert np.array_equal(chunked, singles)
