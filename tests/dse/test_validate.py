"""Validation-harness tests."""

import pytest

from repro.common.config import LatencyConfig
from repro.common.events import EventType
from repro.dse.validate import (
    ScenarioError,
    ValidationReport,
    bottleneck_reduction_scenarios,
    validate_predictors,
)


class TestScenarioGeneration:
    def test_single_event_scenarios(self):
        scenarios = bottleneck_reduction_scenarios(
            LatencyConfig(), [EventType.FP_ADD], fraction=0.5, pairs=False
        )
        assert len(scenarios) == 1
        assert scenarios[0][EventType.FP_ADD] == 3

    def test_pairs_included(self):
        scenarios = bottleneck_reduction_scenarios(
            LatencyConfig(),
            [EventType.FP_ADD, EventType.L1D, EventType.MEM_D],
            fraction=0.5,
        )
        # 3 singles + 3 pairs.
        assert len(scenarios) == 6

    def test_fraction_clamps_to_whole_cycles(self):
        scenarios = bottleneck_reduction_scenarios(
            LatencyConfig(), [EventType.LD], fraction=0.1, pairs=False
        )
        assert scenarios[0][EventType.LD] == 1

    def test_duplicate_bottlenecks_deduplicated(self):
        scenarios = bottleneck_reduction_scenarios(
            LatencyConfig(),
            [EventType.L1D, EventType.L1D],
            fraction=0.5,
        )
        assert len(scenarios) == 1


class TestScenarioError:
    def test_signed_relative_error(self):
        error = ScenarioError(
            latency=LatencyConfig(),
            simulated_cycles=100.0,
            predicted_cycles=90.0,
        )
        assert error.relative_error == pytest.approx(-0.10)
        assert error.abs_error_percent == pytest.approx(10.0)


class TestReport:
    def make_report(self):
        report = ValidationReport(workload_name="w")
        for predicted in (95.0, 105.0, 120.0):
            report.add(
                "m",
                ScenarioError(
                    latency=LatencyConfig(),
                    simulated_cycles=100.0,
                    predicted_cycles=predicted,
                ),
            )
        return report

    def test_mean_and_max(self):
        report = self.make_report()
        assert report.mean_abs_error("m") == pytest.approx((5 + 5 + 20) / 3)
        assert report.max_abs_error("m") == pytest.approx(20.0)

    def test_box_stats(self):
        stats = self.make_report().box_stats("m")
        assert stats["min"] == pytest.approx(-5.0)
        assert stats["max"] == pytest.approx(20.0)
        assert stats["median"] == pytest.approx(5.0)

    def test_summary_rows(self):
        rows = self.make_report().summary_rows()
        assert rows[0][0] == "m"


def test_validate_predictors_end_to_end(gamess_session):
    base = gamess_session.config.latency
    scenarios = bottleneck_reduction_scenarios(
        base, [EventType.FP_ADD, EventType.L1D], fraction=0.5
    )
    report = validate_predictors(
        gamess_session.machine, gamess_session.predictors(), scenarios
    )
    assert set(report.errors) == {"rpstacks", "cp1", "fmt"}
    for name in report.errors:
        assert len(report.errors[name]) == len(scenarios)
    # The half-latency scenario set is gentle: RpStacks must stay tight.
    assert report.mean_abs_error("rpstacks") < 12.0
