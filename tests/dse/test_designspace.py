"""Design-space enumeration tests."""

import pytest

from repro.common.config import LatencyConfig
from repro.common.events import EventType
from repro.dse.designspace import DesignSpace, reduction_space


def space(**axes):
    return DesignSpace.from_mapping(
        {EventType[name]: values for name, values in axes.items()}
    )


def test_point_count_is_cartesian_product():
    s = space(L1D=[1, 2, 4], FP_ADD=[1, 3, 6], MEM_D=[66, 133])
    assert s.num_points == 18
    assert len(s.points()) == 18


def test_points_cover_all_combinations():
    s = space(L1D=[1, 2], LD=[1, 2])
    combos = {(p[EventType.L1D], p[EventType.LD]) for p in s}
    assert combos == {(1, 1), (1, 2), (2, 1), (2, 2)}


def test_unswept_events_keep_base_values():
    base = LatencyConfig().with_overrides({EventType.FP_DIV: 12})
    s = DesignSpace.from_mapping({EventType.L1D: [1]}, base=base)
    point = s.points()[0]
    assert point[EventType.FP_DIV] == 12


def test_axis_values_are_deduplicated_and_sorted():
    s = space(L1D=[4, 1, 4, 2])
    assert dict(s.axes)[EventType.L1D] == (1, 2, 4)


def test_structure_domain_axes_rejected():
    with pytest.raises(ValueError, match="structure-domain"):
        DesignSpace.from_mapping({EventType.BR_MISP: [1, 2]})


def test_empty_axis_rejected():
    with pytest.raises(ValueError, match="empty axis"):
        space(L1D=[])


def test_negative_latency_rejected():
    with pytest.raises(ValueError, match="negative"):
        space(L1D=[-1, 2])


def test_sample_is_deterministic_and_in_space():
    s = space(L1D=[1, 2, 4], FP_MUL=[1, 6])
    a = s.sample(10, seed=3)
    b = s.sample(10, seed=3)
    assert a == b
    valid_l1d = {1, 2, 4}
    for point in a:
        assert point[EventType.L1D] in valid_l1d


def test_reduction_space_scales_baseline():
    s = reduction_space(
        [EventType.FP_ADD], fractions=(1.0, 0.5, 0.25)
    )
    values = dict(s.axes)[EventType.FP_ADD]
    assert values == (2, 3, 6)  # 6*0.25 -> 2 (rounded), 6*0.5 -> 3


def test_reduction_space_clamps_to_one_cycle():
    s = reduction_space([EventType.LD], fractions=(0.1,))
    assert dict(s.axes)[EventType.LD] == (1,)


def test_len_matches_num_points():
    s = space(L1D=[1, 2])
    assert len(s) == 2


class TestArrayEnumeration:
    def big_space(self):
        return space(
            L1D=[1, 2, 4], FP_ADD=[1, 3, 6], MEM_D=[33, 66, 133], LD=[1, 2]
        )

    def test_theta_matrix_matches_materialised_points(self):
        s = self.big_space()
        thetas = s.theta_matrix()
        points = s.points()
        assert thetas.shape == (18, len(points))
        for index, point in enumerate(points):
            assert (thetas[:, index] == point.as_vector()).all()

    def test_point_at_matches_enumeration_order(self):
        s = self.big_space()
        for index, point in enumerate(s.points()):
            assert s.point_at(index) == point

    def test_point_at_rejects_out_of_range(self):
        s = space(L1D=[1, 2])
        with pytest.raises(IndexError):
            s.point_at(2)
        with pytest.raises(IndexError):
            s.point_at(-1)

    def test_theta_matrix_chunks_concatenate_to_full(self):
        import numpy as np

        s = self.big_space()
        chunks = [s.theta_matrix(lo, hi) for lo, hi in s.iter_chunks(7)]
        assert np.array_equal(np.hstack(chunks), s.theta_matrix())

    def test_theta_matrix_rejects_bad_ranges(self):
        s = space(L1D=[1, 2])
        with pytest.raises(IndexError):
            s.theta_matrix(0, 3)
        with pytest.raises(IndexError):
            s.theta_matrix(2, 1)

    def test_iter_chunks_cover_exactly(self):
        s = self.big_space()
        ranges = list(s.iter_chunks(10))
        assert ranges[0][0] == 0
        assert ranges[-1][1] == s.num_points
        total = sum(hi - lo for lo, hi in ranges)
        assert total == s.num_points


class TestSampleWithoutReplacement:
    def test_full_sample_has_no_duplicates(self):
        s = space(L1D=[1, 2, 4], FP_ADD=[1, 3, 6])
        picks = s.sample(s.num_points, seed=5)
        assert len(set(picks)) == s.num_points

    def test_partial_sample_has_no_duplicates(self):
        s = space(L1D=[1, 2, 4], FP_ADD=[1, 3, 6], MEM_D=[33, 66, 133])
        picks = s.sample(20, seed=11)
        assert len(set(picks)) == 20

    def test_oversampling_falls_back_to_replacement(self):
        s = space(L1D=[1, 2])
        picks = s.sample(10, seed=2)
        assert len(picks) == 10  # duplicates unavoidable, documented
