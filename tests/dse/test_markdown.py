"""Markdown report generator tests."""

import pytest

from repro.common.events import EventType
from repro.dse.markdown import workload_report


@pytest.fixture(scope="module")
def report(gamess_session):
    return workload_report(gamess_session)


def test_report_has_all_sections(report):
    for heading in (
        "# Analysis report:",
        "## Penalty decomposition",
        "## Sensitivity",
        "## Bottleneck timeline",
        "## Probe validation",
    ):
        assert heading in report


def test_tables_are_valid_markdown(report):
    for line in report.splitlines():
        if line.startswith("|"):
            assert line.endswith("|")
            assert line.count("|") >= 3


def test_baseline_cpi_quoted(report, gamess_session):
    assert f"{gamess_session.baseline_cpi:.3f}" in report


def test_all_methods_in_validation(report):
    for method in ("rpstacks", "cp1", "fmt"):
        assert method in report


def test_custom_probe(gamess_session):
    text = workload_report(
        gamess_session, probe_overrides={EventType.MEM_D: 40}
    )
    assert "MEM_D=40" in text


def test_report_ends_with_newline(report):
    assert report.endswith("\n")
