"""Explorer tests: sweeping, target filtering, cost and Pareto logic."""

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import EventType
from repro.dse.designspace import DesignSpace
from repro.dse.explorer import (
    Candidate,
    Explorer,
    default_cost_model,
)


class LinearPredictor:
    """Deterministic stand-in: CPI = L1D latency / 4."""

    num_uops = 100

    def predict_cpi(self, latency):
        return latency[EventType.L1D] / 4.0

    def predict_cycles(self, latency):
        return self.predict_cpi(latency) * self.num_uops


class BatchPredictor(LinearPredictor):
    """Same model, exposing the vectorised interface."""

    def predict_many(self, latencies):
        return np.array(
            [self.predict_cycles(latency) for latency in latencies]
        )


@pytest.fixture
def l1d_space():
    return DesignSpace.from_mapping({EventType.L1D: [1, 2, 4, 8]})


class TestExploration:
    def test_all_points_priced(self, l1d_space):
        result = Explorer(LinearPredictor()).explore(l1d_space)
        assert result.num_points == 4
        assert result.num_meeting_target == 4

    def test_target_filters_candidates(self, l1d_space):
        result = Explorer(LinearPredictor()).explore(
            l1d_space, target_cpi=0.6
        )
        kept = {c.latency[EventType.L1D] for c in result.candidates}
        assert kept == {1, 2}

    def test_batch_and_scalar_predictors_agree(self, l1d_space):
        scalar = Explorer(LinearPredictor()).explore(l1d_space)
        batch = Explorer(BatchPredictor()).explore(l1d_space)
        assert [c.predicted_cpi for c in scalar.candidates] == pytest.approx(
            [c.predicted_cpi for c in batch.candidates]
        )

    def test_best_is_cheapest_meeting_target(self, l1d_space):
        result = Explorer(LinearPredictor()).explore(
            l1d_space, target_cpi=0.6
        )
        # L1D=2 needs less optimisation effort than L1D=1.
        assert result.best().latency[EventType.L1D] == 2

    def test_best_without_candidates_raises(self, l1d_space):
        result = Explorer(LinearPredictor()).explore(
            l1d_space, target_cpi=0.01
        )
        with pytest.raises(ValueError):
            result.best()


class TestCostModel:
    def test_baseline_costs_nothing(self):
        base = LatencyConfig()
        assert default_cost_model(base, base) == 0.0

    def test_halving_one_event_costs_one(self):
        base = LatencyConfig()
        point = base.with_overrides({EventType.L1D: 2})
        assert default_cost_model(point, base) == pytest.approx(1.0)

    def test_relaxing_latency_is_free(self):
        base = LatencyConfig()
        point = base.with_overrides({EventType.L1D: 8})
        assert default_cost_model(point, base) == 0.0

    def test_costs_accumulate_across_events(self):
        base = LatencyConfig()
        point = base.with_overrides({EventType.L1D: 2, EventType.FP_ADD: 3})
        assert default_cost_model(point, base) == pytest.approx(2.0)


class TestPareto:
    def make_result(self):
        candidates = [
            Candidate(LatencyConfig(), predicted_cpi=1.0, cost=0.0),
            Candidate(LatencyConfig(), predicted_cpi=0.8, cost=1.0),
            Candidate(LatencyConfig(), predicted_cpi=0.9, cost=2.0),  # dominated
            Candidate(LatencyConfig(), predicted_cpi=0.5, cost=3.0),
        ]
        from repro.dse.explorer import ExplorationResult

        return ExplorationResult(
            candidates=candidates, num_points=4, target_cpi=None
        )

    def test_front_excludes_dominated(self):
        front = self.make_result().pareto_front()
        cpis = [c.predicted_cpi for c in front]
        assert cpis == [1.0, 0.8, 0.5]

    def test_front_sorted_by_cost(self):
        front = self.make_result().pareto_front()
        costs = [c.cost for c in front]
        assert costs == sorted(costs)


def test_explorer_with_real_session(gamess_session):
    """The Fig 6a loop: sweep bottleneck latencies, find target designs."""
    space = DesignSpace.from_mapping(
        {
            EventType.L1D: [1, 2, 4],
            EventType.FP_ADD: [1, 3, 6],
            EventType.FP_MUL: [1, 3, 6],
        }
    )
    target = gamess_session.baseline_cpi * 0.85
    result = gamess_session.explore(space, target_cpi=target)
    assert result.num_points == 27
    assert 0 < result.num_meeting_target < 27
    best = result.best()
    # The chosen design must actually meet the target in the simulator
    # within the method's error band.
    simulated = gamess_session.simulate(best.latency).cpi
    assert simulated <= target * 1.10


class NoUopsPredictor:
    """Has a batch interface but no µop count (regression: the explorer
    used to assume predict_many implies num_uops)."""

    def predict_cpi(self, latency):
        return latency[EventType.L1D] / 4.0

    def predict_many(self, latencies):  # pragma: no cover - must be unused
        raise AssertionError("batch path requires num_uops")


class TestPredictAllGuards:
    def test_predictor_without_num_uops_uses_scalar_path(self, l1d_space):
        result = Explorer(NoUopsPredictor()).explore(l1d_space)
        assert [c.predicted_cpi for c in result.candidates] == [
            0.25, 0.5, 1.0, 2.0
        ]

    def test_empty_point_list_predicts_empty(self):
        cpis = Explorer(BatchPredictor())._predict_all([])
        assert len(cpis) == 0


class TestZeroCycleCost:
    def test_zero_cycle_target_costs_more_than_one_cycle(self):
        base = LatencyConfig()
        one = base.with_overrides({EventType.L1D: 1})
        zero = base.with_overrides({EventType.L1D: 0})
        assert default_cost_model(zero, base) > default_cost_model(one, base)

    def test_cost_is_monotone_toward_zero(self):
        base = LatencyConfig()
        costs = [
            default_cost_model(
                base.with_overrides({EventType.MEM_D: cycles}), base
            )
            for cycles in (133, 66, 12, 4, 1, 0)
        ]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_matrix_cost_model_bit_identical_to_scalar(self):
        from repro.dse.designspace import DesignSpace
        from repro.dse.explorer import default_cost_model_matrix

        space = DesignSpace.from_mapping(
            {
                EventType.L1D: [0, 1, 2, 4, 8],
                EventType.FP_ADD: [1, 3, 6],
                EventType.MEM_D: [33, 133, 266],
            }
        )
        vectorised = default_cost_model_matrix(
            space.theta_matrix(), space.base
        )
        scalar = [default_cost_model(p, space.base) for p in space.points()]
        assert list(vectorised) == scalar
