"""Monte-Carlo space-statistics tests."""

import math

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.montecarlo import sample_space_statistics


@pytest.fixture
def linear_model():
    """CPI driven by L1D (strongly) and FP_ADD (weakly)."""
    stack = np.zeros((1, NUM_EVENTS))
    stack[0, EventType.L1D] = 20
    stack[0, EventType.FP_ADD] = 2
    stack[0, EventType.BASE] = 10
    return RpStacksModel(
        [stack], baseline=LatencyConfig(), num_uops=100
    )


AXES = {
    EventType.L1D: [1, 2, 3, 4],
    EventType.FP_ADD: [1, 2, 3, 4, 5, 6],
}


class TestSampling:
    def test_deterministic_per_seed(self, linear_model):
        a = sample_space_statistics(linear_model, AXES, 500, seed=4)
        b = sample_space_statistics(linear_model, AXES, 500, seed=4)
        assert a.cpi_quantiles == b.cpi_quantiles

    def test_quantiles_are_monotone_and_in_range(self, linear_model):
        stats = sample_space_statistics(linear_model, AXES, 1000)
        values = [stats.cpi_quantiles[q] for q in sorted(stats.cpi_quantiles)]
        assert values == sorted(values)
        # Analytic extremes: min = (20*1 + 2*1 + 10)/100, max with 4/6.
        assert values[0] >= (20 * 1 + 2 * 1 + 10) / 100 - 1e-9
        assert values[-1] <= (20 * 4 + 2 * 6 + 10) / 100 + 1e-9

    def test_dominant_event_identified(self, linear_model):
        stats = sample_space_statistics(linear_model, AXES, 2000)
        assert stats.dominant_events(top=1) == [EventType.L1D]
        assert (
            stats.event_correlations[EventType.L1D]
            > stats.event_correlations[EventType.FP_ADD]
            > 0
        )

    def test_target_fraction(self, linear_model):
        floor_cpi = (20 * 1 + 2 * 1 + 10) / 100
        stats = sample_space_statistics(
            linear_model, AXES, 2000, target_cpi=floor_cpi + 1e-9
        )
        # Exactly the L1D=1, FP_ADD=1 cell: probability 1/4 * 1/6.
        assert stats.fraction_meeting_target == pytest.approx(
            1 / 24, abs=0.02
        )

    def test_no_target_gives_nan(self, linear_model):
        stats = sample_space_statistics(linear_model, AXES, 100)
        assert math.isnan(stats.fraction_meeting_target)

    def test_validation(self, linear_model):
        with pytest.raises(ValueError):
            sample_space_statistics(linear_model, AXES, 1)
        with pytest.raises(ValueError):
            sample_space_statistics(linear_model, {}, 100)
        with pytest.raises(ValueError):
            sample_space_statistics(
                linear_model, {EventType.L1D: []}, 100
            )


class ConstantModel:
    """A degenerate predictor: every design point prices identically."""

    num_uops = 100

    def predict_many(self, points):
        return np.full(len(points), 42.0)


class TestNaNSafety:
    def test_constant_predictor_yields_zero_correlations(self):
        """Regression: a zero-variance CPI vector used to reach
        ``np.corrcoef`` and come back NaN; it must read as 'no
        correlation' for every axis, warning-free."""
        with np.errstate(all="raise"):
            stats = sample_space_statistics(ConstantModel(), AXES, 200)
        assert stats.event_correlations == {
            EventType.L1D: 0.0,
            EventType.FP_ADD: 0.0,
        }
        assert all(
            math.isfinite(v) for v in stats.event_correlations.values()
        )
        assert stats.cpi_quantiles[0.5] == pytest.approx(0.42)

    def test_single_value_axis_is_zero_not_nan(self, linear_model):
        stats = sample_space_statistics(
            linear_model,
            {EventType.L1D: [1, 2, 3, 4], EventType.FP_ADD: [3]},
            200,
        )
        assert stats.event_correlations[EventType.FP_ADD] == 0.0
        assert stats.event_correlations[EventType.L1D] > 0.9


def test_vectorised_draw_matches_sample_budget(linear_model):
    """The matrix draw must still honour num_samples exactly and stay
    deterministic per seed across the vectorised path."""
    a = sample_space_statistics(linear_model, AXES, 333, seed=7)
    b = sample_space_statistics(linear_model, AXES, 333, seed=7)
    c = sample_space_statistics(linear_model, AXES, 333, seed=8)
    assert a.num_samples == 333
    assert a.event_correlations == b.event_correlations
    assert a.cpi_quantiles == b.cpi_quantiles
    assert a.cpi_quantiles != c.cpi_quantiles


def test_on_real_model(gamess_session):
    axes = {
        EventType.L1D: list(range(1, 5)),
        EventType.FP_ADD: list(range(1, 7)),
        EventType.FP_MUL: list(range(1, 7)),
        EventType.MEM_D: [33, 66, 133],
        EventType.L2D: [3, 6, 12],
    }
    stats = sample_space_statistics(
        gamess_session.rpstacks, axes, 3000,
        target_cpi=gamess_session.baseline_cpi * 0.8,
    )
    assert 0.0 < stats.fraction_meeting_target < 1.0
    # gamess is L1D/FP-bound, not DRAM-bound: memory correlation small.
    dominant = stats.dominant_events(top=2)
    assert EventType.MEM_D not in dominant
