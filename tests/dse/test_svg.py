"""SVG renderer tests (structure of the emitted documents)."""

import xml.etree.ElementTree as ET

import pytest

from repro.dse.svg import render_line_chart, render_stacked_bars


def parse(svg_text):
    return ET.fromstring(svg_text)


NS = "{http://www.w3.org/2000/svg}"


class TestStackedBars:
    BARS = [
        ("gamess", {"Fadd": 0.6, "L1D": 0.5, "Base": 0.2}),
        ("mcf", {"MemD": 5.0, "DTLB": 1.0}),
    ]

    def test_valid_xml(self):
        root = parse(render_stacked_bars(self.BARS, "Fig 12"))
        assert root.tag == f"{NS}svg"

    def test_one_rect_per_positive_component(self):
        root = parse(render_stacked_bars(self.BARS, "t"))
        # Component rects carry a <title> tooltip; background and legend
        # swatches do not.
        component_rects = [
            r
            for r in root.findall(f"{NS}rect")
            if r.find(f"{NS}title") is not None
        ]
        assert len(component_rects) == 5

    def test_heights_proportional_to_values(self):
        root = parse(render_stacked_bars(self.BARS, "t"))
        rects = [
            r for r in root.findall(f"{NS}rect")
            if r.find(f"{NS}title") is not None
        ]
        by_title = {
            r.find(f"{NS}title").text: float(r.get("height"))
            for r in rects
        }
        memd = by_title["mcf MemD: 5.000"]
        dtlb = by_title["mcf DTLB: 1.000"]
        assert memd == pytest.approx(5 * dtlb, rel=0.01)

    def test_component_colours_consistent_across_bars(self):
        bars = [
            ("a", {"L1D": 1.0, "Fadd": 0.5}),
            ("b", {"Fadd": 0.7, "L1D": 0.2}),
        ]
        root = parse(render_stacked_bars(bars, "t"))
        fills = {}
        for rect in root.findall(f"{NS}rect"):
            title = rect.find(f"{NS}title")
            if title is None:
                continue
            component = title.text.split()[1].rstrip(":")
            fills.setdefault(component, set()).add(rect.get("fill"))
        assert all(len(colours) == 1 for colours in fills.values())

    def test_labels_and_legend_present(self):
        text = render_stacked_bars(self.BARS, "My Title", unit="CPI")
        assert "My Title" in text
        assert "gamess" in text
        assert "MemD" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_stacked_bars([], "t")


class TestLineChart:
    X = [1, 10, 100, 1000]
    SERIES = {
        "simulator": [1.0, 10.0, 100.0, 1000.0],
        "rpstacks": [50.0, 50.0, 50.1, 51.0],
    }

    def test_valid_xml_with_one_polyline_per_series(self):
        root = parse(
            render_line_chart(self.X, self.SERIES, "Fig 13", log_x=True)
        )
        polylines = root.findall(f"{NS}polyline")
        assert len(polylines) == 2

    def test_log_x_spacing(self):
        root = parse(
            render_line_chart(self.X, self.SERIES, "t", log_x=True)
        )
        line = root.findall(f"{NS}polyline")[0]
        xs = [
            float(pair.split(",")[0])
            for pair in line.get("points").split()
        ]
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        # Decades are equally spaced on a log axis.
        assert gaps[0] == pytest.approx(gaps[1], rel=0.01)
        assert gaps[1] == pytest.approx(gaps[2], rel=0.01)

    def test_series_length_validated(self):
        with pytest.raises(ValueError):
            render_line_chart([1, 2], {"a": [1.0]}, "t")

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            render_line_chart([1], {"a": [1.0]}, "t")

    def test_axis_labels_present(self):
        text = render_line_chart(
            self.X, self.SERIES, "t",
            x_label="design points", y_label="seconds",
        )
        assert "design points" in text
        assert "seconds" in text
