"""Structure-domain exploration tests."""

import pytest

from repro.common.config import MicroarchConfig
from repro.common.events import EventType
from repro.dse.designspace import DesignSpace
from repro.dse.structure import (
    StructureExplorer,
    StructurePoint,
    structure_grid,
)


class TestStructurePoint:
    def test_apply_overrides_core_fields(self):
        point = StructurePoint.of("small", rob_size=64, iq_size=18)
        config = point.apply(MicroarchConfig())
        assert config.core.rob_size == 64
        assert config.core.iq_size == 18
        assert config.core.fetch_width == 4  # untouched

    def test_points_are_hashable_value_objects(self):
        a = StructurePoint.of("x", rob_size=64)
        b = StructurePoint.of("x", rob_size=64)
        assert a == b
        assert hash(a) == hash(b)

    def test_grid_is_cartesian(self):
        points = structure_grid(
            {"rob_size": [64, 128], "branch_predictor": ["bimodal", "gshare"]}
        )
        assert len(points) == 4
        names = {p.name for p in points}
        assert "rob_size=64,branch_predictor=bimodal" in names


class TestStructureExplorer:
    @pytest.fixture(scope="class")
    def explorer(self, tiny_workload):
        return StructureExplorer(tiny_workload)

    @pytest.fixture(scope="class")
    def points(self):
        return [
            StructurePoint.of("baseline"),
            StructurePoint.of("small-rob", rob_size=32),
        ]

    @pytest.fixture(scope="class")
    def results(self, explorer, points):
        space = DesignSpace.from_mapping(
            {EventType.L1D: [1, 2, 4], EventType.FP_ADD: [3, 6]}
        )
        return explorer.explore(points, space)

    def test_one_result_per_structure(self, results, points):
        assert [r.point for r in results] == points

    def test_sessions_are_cached(self, explorer, points):
        before = dict(explorer.sessions)
        explorer.analyse(points[0])
        assert explorer.sessions == before

    def test_smaller_rob_is_no_faster(self, results):
        baseline, small = results
        assert small.baseline_cpi >= baseline.baseline_cpi

    def test_candidates_priced_per_structure(self, results):
        for result in results:
            assert result.candidates
            for candidate in result.candidates:
                assert candidate.predicted_cpi > 0

    def test_overall_best_meets_ordering(self, results):
        winner, candidate = StructureExplorer.overall_best(results)
        for result in results:
            other = result.best()
            if other is None:
                continue
            assert (candidate.cost, candidate.predicted_cpi) <= (
                other.cost,
                other.predicted_cpi,
            )

    def test_overall_best_requires_candidates(self):
        with pytest.raises(ValueError):
            StructureExplorer.overall_best([])


def test_prefetcher_routes_to_top_level_config():
    point = StructurePoint.of("pf", prefetcher="stride", rob_size=64)
    config = point.apply(MicroarchConfig())
    assert config.prefetcher == "stride"
    assert config.core.rob_size == 64
