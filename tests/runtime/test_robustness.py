"""Failure-injection tests for the runner and the artifact cache.

A production sweep cannot afford one bad workload or one corrupt cache
file taking down the whole run: failures must be *reported*, corruption
must be *detected and recomputed*, never crashed on and never silently
served.
"""

import json
import os

import pytest

from repro.dse.pipeline import analyze
from repro.runtime.cache import ArtifactCache
from repro.runtime.runner import run_suite
from repro.workloads.suite import make_workload

MACROS = 50


def _exploding_factory(name, macros, seed=1):
    """Picklable workload factory that detonates for one workload."""
    if name == "mcf":
        raise RuntimeError("synthetic generator failure for mcf")
    return make_workload(name, macros, seed=seed)


NAMES = ("gamess", "mcf", "bzip2")


@pytest.mark.parametrize("jobs", [1, 2])
def test_failed_workload_does_not_sink_the_suite(jobs):
    report = run_suite(
        names=NAMES,
        macros=MACROS,
        jobs=jobs,
        workload_factory=_exploding_factory,
    )
    assert [o.name for o in report] == list(NAMES)
    assert [o.ok for o in report] == [True, False, True]
    failed = report.failed[0]
    assert failed.name == "mcf"
    assert "synthetic generator failure" in failed.error
    assert report.session("gamess").baseline_result.cycles > 0
    with pytest.raises(RuntimeError, match="failed"):
        report.session("mcf")
    # The failure is also visible (not fatal) in the human summary.
    assert "FAILED" in report.describe()


def _entry_dirs(cache):
    return list(cache._entries())


def _fresh_entry(tmp_path, workload):
    cache = ArtifactCache(tmp_path / "cache")
    session = analyze(workload, cache=cache)
    (entry,) = _entry_dirs(cache)
    return cache, session, entry


@pytest.mark.parametrize("artifact", ["trace.npz", "graph.npz", "model.npz"])
def test_corrupted_artifact_is_recomputed(tmp_path, artifact):
    workload = make_workload("gamess", MACROS)
    cache, cold, entry = _fresh_entry(tmp_path, workload)
    target = entry / artifact
    data = bytearray(target.read_bytes())
    data[len(data) // 2] ^= 0xFF
    target.write_bytes(bytes(data))

    recomputed = analyze(workload, cache=cache)
    assert cache.corruptions == 1
    assert cache.hits == 0
    assert recomputed.baseline_result.cycles == cold.baseline_result.cycles
    # The rewritten entry is healthy again: next call is a clean hit.
    warm = analyze(workload, cache=cache)
    assert cache.hits == 1
    assert warm.baseline_result.cycles == cold.baseline_result.cycles


def test_truncated_artifact_is_recomputed(tmp_path):
    workload = make_workload("bzip2", MACROS)
    cache, cold, entry = _fresh_entry(tmp_path, workload)
    target = entry / "model.npz"
    target.write_bytes(target.read_bytes()[: 100])

    recomputed = analyze(workload, cache=cache)
    assert cache.corruptions == 1
    assert recomputed.baseline_result.cycles == cold.baseline_result.cycles


def test_mangled_meta_is_recomputed(tmp_path):
    workload = make_workload("gamess", MACROS)
    cache, cold, entry = _fresh_entry(tmp_path, workload)
    (entry / "meta.json").write_text("{not json")

    recomputed = analyze(workload, cache=cache)
    assert cache.corruptions == 1
    assert recomputed.baseline_result.cycles == cold.baseline_result.cycles


def test_missing_artifact_is_recomputed(tmp_path):
    workload = make_workload("gamess", MACROS)
    cache, cold, entry = _fresh_entry(tmp_path, workload)
    os.remove(entry / "graph.npz")

    recomputed = analyze(workload, cache=cache)
    assert cache.corruptions == 1
    assert recomputed.baseline_result.cycles == cold.baseline_result.cycles


def test_clear_and_stats(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    analyze(make_workload("gamess", MACROS), cache=cache)
    analyze(make_workload("bzip2", MACROS), cache=cache)
    stats = cache.stats()
    assert stats.entries == 2
    assert stats.total_bytes > 0
    assert stats.workloads == {"gamess": 1, "bzip2": 1}
    assert cache.clear() == 2
    assert cache.stats().entries == 0
    # Clearing twice is a harmless no-op.
    assert cache.clear() == 0


def test_created_stamp_is_wall_clock_iso(tmp_path):
    workload = make_workload("gamess", MACROS)
    cache, _session, entry = _fresh_entry(tmp_path, workload)
    meta = json.loads((entry / "meta.json").read_text())
    # ISO-8601 UTC, parsable back into an age of roughly "just now".
    from repro.obs import clock

    then = clock.parse_wall_iso(meta["created"])
    assert then.tzinfo is not None
    age = ArtifactCache._entry_age_seconds(meta["created"])
    assert 0.0 <= age < 300.0


def test_stats_report_entry_ages(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    analyze(make_workload("gamess", MACROS), cache=cache)
    analyze(make_workload("bzip2", MACROS), cache=cache)
    stats = cache.stats()
    assert len(stats.entry_ages_seconds) == 2
    assert stats.newest_age_seconds <= stats.oldest_age_seconds
    assert "entry age" in stats.describe()
    assert "newest" in stats.describe()


def test_legacy_epoch_created_stamp_still_ages(tmp_path):
    workload = make_workload("gamess", MACROS)
    cache, _session, entry = _fresh_entry(tmp_path, workload)
    meta = json.loads((entry / "meta.json").read_text())
    from repro.obs import clock

    meta["created"] = clock.wall_ns() / 1e9 - 120.0  # pre-rebase format
    (entry / "meta.json").write_text(json.dumps(meta))
    # Rewriting meta.json invalidates nothing age-wise (checksums only
    # cover artifacts); the epoch float is honoured.
    stats = cache.stats()
    assert stats.entry_ages_seconds
    assert 115.0 <= stats.oldest_age_seconds <= 600.0


def test_unparsable_created_stamp_is_skipped(tmp_path):
    workload = make_workload("gamess", MACROS)
    cache, _session, entry = _fresh_entry(tmp_path, workload)
    meta = json.loads((entry / "meta.json").read_text())
    meta["created"] = "not-a-date"
    (entry / "meta.json").write_text(json.dumps(meta))
    stats = cache.stats()
    assert stats.entries == 1
    assert stats.entry_ages_seconds == []
    assert "entry age" not in stats.describe()


def test_checksums_recorded_in_meta(tmp_path):
    workload = make_workload("gamess", MACROS)
    _cache, _session, entry = _fresh_entry(tmp_path, workload)
    meta = json.loads((entry / "meta.json").read_text())
    assert set(meta["checksums"]) == {"trace.npz", "graph.npz", "model.npz"}
    assert meta["workload"] == "gamess"
    assert all(len(digest) == 64 for digest in meta["checksums"].values())


def test_unknown_suite_name_fails_fast():
    with pytest.raises(KeyError, match="no-such-workload"):
        run_suite(names=("gamess", "no-such-workload"), macros=MACROS)


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        run_suite(names=("gamess",), macros=MACROS, jobs=0)
