"""Executor backend tests: spec parsing/validation, the subprocess
pipe-protocol backend, the loopback ssh fleet, and fleet failure
semantics (worker death, dead-host requeue, all-hosts-dead)."""

import os
import signal
import stat
import time

import pytest

from repro.obs.observer import Observer
from repro.runtime.executors import (
    BackendSpec,
    HostSpec,
    normalize_backend,
    parse_hosts_file,
)
from repro.runtime.resilience import RetryPolicy
from repro.runtime.runner import parallel_map
from tests.chaos import faults


def square(value):
    return value * value


def add(left, right):
    return left + right


def explode(value):
    raise RuntimeError(f"boom {value}")


def whoami(value):
    return value, os.getpid()


def kill_self(value):
    os.kill(os.getpid(), signal.SIGKILL)


def nap_and_square(value):
    time.sleep(0.05)
    return value * value


def fake_ssh(tmp_path, dead_hosts=()):
    """A loopback 'ssh client': drops the hostname and execs the rest
    of the command locally.  Hostnames in *dead_hosts* refuse the
    connection the way an unreachable node would."""
    lines = ["#!/bin/sh", 'host="$1"', "shift"]
    for name in dead_hosts:
        lines.append(
            f'if [ "$host" = "{name}" ]; then\n'
            f'  echo "ssh: connect to host {name}: Connection refused" >&2\n'
            f"  exit 255\nfi"
        )
    lines.append('exec "$@"')
    script = tmp_path / "fake-ssh.sh"
    script.write_text("\n".join(lines) + "\n")
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return str(script)


def loopback_spec(tmp_path, hosts, dead_hosts=(), **kwargs):
    return BackendSpec(
        kind="ssh",
        hosts=tuple(hosts),
        ssh_command=(fake_ssh(tmp_path, dead_hosts),),
        connect_timeout=20.0,
        **kwargs,
    )


class TestHostsFile:
    def test_parses_names_slots_and_comments(self, tmp_path):
        path = tmp_path / "hosts"
        path.write_text(
            "# fleet\n"
            "node-a 4\n"
            "node-b   # defaults to one slot\n"
            "\n"
            "node-c 2\n"
        )
        assert parse_hosts_file(path) == (
            HostSpec("node-a", 4),
            HostSpec("node-b", 1),
            HostSpec("node-c", 2),
        )

    @pytest.mark.parametrize(
        "content, match",
        [
            ("", "names no hosts"),
            ("# only comments\n", "names no hosts"),
            ("a 1\na 2\n", "duplicate host"),
            ("a one\n", "slots must be an integer"),
            ("a 0\n", "slots must be >= 1"),
            ("a 1 extra\n", "expected 'hostname"),
        ],
    )
    def test_rejects_malformed_files(self, tmp_path, content, match):
        path = tmp_path / "hosts"
        path.write_text(content)
        with pytest.raises(ValueError, match=match):
            parse_hosts_file(path)


class TestSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown backend kind"):
            BackendSpec(kind="carrier-pigeon")

    def test_ssh_requires_hosts(self):
        with pytest.raises(ValueError, match="requires a host list"):
            BackendSpec(kind="ssh")

    def test_fanout_follows_host_slots_for_ssh(self):
        spec = BackendSpec(
            kind="ssh", hosts=(HostSpec("a", 3), HostSpec("b", 2))
        )
        assert spec.total_slots() == 5
        assert spec.fanout(jobs=2) == 5
        assert BackendSpec(kind="subprocess").fanout(jobs=2) == 2

    def test_normalize_accepts_the_public_shapes(self, tmp_path):
        assert normalize_backend(None) == BackendSpec()
        assert normalize_backend("subprocess").kind == "subprocess"
        spec = BackendSpec(kind="subprocess")
        assert normalize_backend(spec) is spec
        hosts_file = tmp_path / "hosts"
        hosts_file.write_text("a 2\nb\n")
        from_file = normalize_backend("ssh", hosts=hosts_file)
        assert from_file.hosts == (HostSpec("a", 2), HostSpec("b", 1))
        from_seq = normalize_backend("ssh", hosts=[HostSpec("a", 1)])
        assert from_seq.hosts == (HostSpec("a", 1),)
        with pytest.raises(TypeError):
            normalize_backend(42)


class TestSubprocessBackend:
    def test_preserves_order_and_unpacks_args(self):
        outcomes = parallel_map(
            square, [(n,) for n in range(8)], jobs=3,
            backend="subprocess",
        )
        assert [o.value for o in outcomes] == [n * n for n in range(8)]
        outcomes = parallel_map(
            add, [(1, 2), (3, 4)], jobs=2, backend="subprocess"
        )
        assert [o.value for o in outcomes] == [3, 7]

    def test_errors_are_isolated_with_remote_tracebacks(self):
        outcomes = parallel_map(
            explode, [(1,), (2,)], jobs=2, backend="subprocess"
        )
        assert not any(o.ok for o in outcomes)
        assert "boom 1" in outcomes[0].error
        assert "boom 2" in outcomes[1].error
        # The worker-side traceback crossed the pipe, not just the
        # exception message.
        assert "explode" in outcomes[0].error

    def test_tasks_actually_run_out_of_process(self):
        outcomes = parallel_map(
            whoami, [(1,), (2,)], jobs=2, backend="subprocess"
        )
        pids = {o.value[1] for o in outcomes}
        assert os.getpid() not in pids

    def test_worker_death_charges_only_the_victim(
        self, tmp_path, monkeypatch
    ):
        for key, value in faults.arm(
            {"1": {"kind": "sigkill", "attempts": 1}}, tmp_path
        ).items():
            monkeypatch.setenv(key, value)
        obs = Observer(enabled=True, progress_stream=None)
        outcomes = parallel_map(
            faults.chaos_task, [(n,) for n in range(4)], jobs=2,
            backend="subprocess", obs=obs,
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.01, max_delay=0.05,
                retry_pool_breaks=True,
            ),
        )
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert outcomes[1].attempts == 2
        # Unlike BrokenProcessPool, bystanders are not charged.
        assert all(
            o.attempts == 1 for o in outcomes if o is not outcomes[1]
        )
        assert obs.counter("runner.worker_deaths").value >= 1

    def test_deadline_reaps_only_the_straggler(self):
        outcomes = parallel_map(
            nap_and_square, [(2,), (3,)], jobs=2, timeout=10.0,
            backend="subprocess",
        )
        assert [o.value for o in outcomes] == [4, 9]


class TestSshLoopbackFleet:
    def test_two_host_fleet_runs_and_preserves_order(self, tmp_path):
        spec = loopback_spec(
            tmp_path, [HostSpec("alpha", 1), HostSpec("beta", 1)]
        )
        outcomes = parallel_map(
            square, [(n,) for n in range(6)], jobs=2, backend=spec
        )
        assert [o.value for o in outcomes] == [n * n for n in range(6)]

    def test_env_override_selects_the_ssh_client(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SSH_CMD", fake_ssh(tmp_path))
        spec = BackendSpec(kind="ssh", hosts=(HostSpec("alpha", 2),))
        outcomes = parallel_map(
            square, [(n,) for n in range(4)], jobs=2, backend=spec
        )
        assert [o.value for o in outcomes] == [0, 1, 4, 9]

    def test_dead_host_detected_and_work_requeued(self, tmp_path):
        """One host refuses every connection: it is struck out after
        ``max_host_failures`` spawn failures and the whole batch
        completes on the surviving host."""
        spec = loopback_spec(
            tmp_path,
            [HostSpec("alive", 1), HostSpec("deadhost", 1)],
            dead_hosts=("deadhost",),
            max_host_failures=2,
        )
        obs = Observer(enabled=True, progress_stream=None)
        outcomes = parallel_map(
            square, [(n,) for n in range(6)], jobs=2, backend=spec,
            obs=obs,
        )
        assert [o.value for o in outcomes] == [n * n for n in range(6)]
        assert obs.counter("runner.dead_hosts").value == 1

    def test_all_hosts_dead_fails_loudly_not_hangs(self, tmp_path):
        spec = loopback_spec(
            tmp_path,
            [HostSpec("deadhost", 1)],
            dead_hosts=("deadhost",),
            max_host_failures=1,
        )
        outcomes = parallel_map(
            square, [(1,), (2,)], jobs=1, backend=spec
        )
        assert not any(o.ok for o in outcomes)
        assert all("worker" in (o.error or "") for o in outcomes)
