"""Unit and property tests for the resilience policy layer: retry
backoff (deterministic, provably bounded), checkpoint round-trips and
stale-resume rejection."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.designspace import DesignSpace
from repro.runtime.resilience import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointMismatchError,
    RetryPolicy,
    SuiteCheckpoint,
    SweepCheckpoint,
    cost_model_id,
    predictor_fingerprint,
    space_fingerprint,
    suite_fingerprint,
)


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.should_retry(ValueError("x"), 1)
        assert policy.should_retry(ValueError("x"), 2)
        assert not policy.should_retry(ValueError("x"), 3)

    def test_non_retryable_errors_fail_immediately(self):
        policy = RetryPolicy(retryable=(OSError,))
        assert policy.should_retry(OSError("io"), 1)
        assert not policy.should_retry(ValueError("logic"), 1)
        # KeyboardInterrupt is a BaseException, never in (Exception,).
        assert not RetryPolicy().should_retry(KeyboardInterrupt(), 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=-0.1)
        with pytest.raises(ValueError, match="jitter_fraction"):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_for(0)

    def test_delays_are_deterministic_and_grow(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, backoff_factor=2.0,
            max_delay=10.0, jitter_fraction=0.0,
        )
        delays = [policy.delay_for(a, task_key="t") for a in range(1, 5)]
        assert delays == [
            policy.delay_for(a, task_key="t") for a in range(1, 5)
        ]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.1)
        assert delays[3] == pytest.approx(0.8)

    def test_jitter_varies_by_task_and_attempt_not_by_call(self):
        policy = RetryPolicy(jitter_fraction=0.5, seed=7)
        a = policy.delay_for(1, task_key="alpha")
        b = policy.delay_for(1, task_key="beta")
        assert a == policy.delay_for(1, task_key="alpha")
        assert a != b  # sha256 collision would be astonishing

    def test_max_delay_caps_the_raw_backoff(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, backoff_factor=10.0,
            max_delay=2.0, jitter_fraction=0.0,
        )
        assert policy.delay_for(9, task_key=0) == pytest.approx(2.0)

    @settings(max_examples=200, deadline=None)
    @given(
        max_attempts=st.integers(min_value=1, max_value=8),
        base_delay=st.floats(
            min_value=0.0, max_value=5.0, allow_nan=False
        ),
        backoff_factor=st.floats(
            min_value=1.0, max_value=4.0, allow_nan=False
        ),
        max_delay=st.floats(
            min_value=0.0, max_value=10.0, allow_nan=False
        ),
        jitter_fraction=st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False
        ),
        seed=st.integers(min_value=0, max_value=2**32),
        task_key=st.one_of(st.integers(), st.text(max_size=20)),
    )
    def test_total_backoff_never_exceeds_documented_cap(
        self, max_attempts, base_delay, backoff_factor, max_delay,
        jitter_fraction, seed, task_key,
    ):
        """The property the docs promise: however unlucky the jitter,
        one task's accumulated backoff stays within total_delay_cap()."""
        policy = RetryPolicy(
            max_attempts=max_attempts,
            base_delay=base_delay,
            backoff_factor=backoff_factor,
            max_delay=max_delay,
            jitter_fraction=jitter_fraction,
            seed=seed,
        )
        total = sum(
            policy.delay_for(attempt, task_key=task_key)
            for attempt in range(1, policy.max_attempts)
        )
        cap = policy.total_delay_cap()
        assert total <= cap * (1 + 1e-12) + 1e-12


@pytest.fixture
def model():
    def vec(**units):
        out = np.zeros(NUM_EVENTS)
        for name, value in units.items():
            out[EventType[name]] = value
        return out

    seg0 = np.stack([vec(FP_ADD=4, BASE=10), vec(L1D=5, LD=2, BASE=8)])
    return RpStacksModel([seg0], baseline=LatencyConfig(), num_uops=50)


@pytest.fixture
def space():
    return DesignSpace.from_mapping(
        {EventType.L1D: [1, 2, 4], EventType.FP_ADD: [1, 3]}
    )


class TestFingerprints:
    def test_space_fingerprint_tracks_content(self, space):
        same = DesignSpace.from_mapping(
            {EventType.L1D: [1, 2, 4], EventType.FP_ADD: [1, 3]}
        )
        other = DesignSpace.from_mapping(
            {EventType.L1D: [1, 2, 5], EventType.FP_ADD: [1, 3]}
        )
        assert space_fingerprint(space) == space_fingerprint(same)
        assert space_fingerprint(space) != space_fingerprint(other)

    def test_predictor_fingerprint_tracks_stacks(self, model):
        twin = RpStacksModel(
            [s.copy() for s in model.segment_stacks],
            baseline=model.baseline,
            num_uops=model.num_uops,
        )
        assert predictor_fingerprint(model) == predictor_fingerprint(twin)
        bigger = RpStacksModel(
            [s * 2 for s in model.segment_stacks],
            baseline=model.baseline,
            num_uops=model.num_uops,
        )
        assert predictor_fingerprint(model) != predictor_fingerprint(
            bigger
        )

    def test_cost_model_id(self):
        from repro.dse.explorer import default_cost_model

        assert cost_model_id(None) == "default"
        assert cost_model_id(default_cost_model) == "default"

        def custom(point, base):
            return 0.0

        assert "custom" in cost_model_id(custom)

    def test_suite_fingerprint_tracks_inputs(self):
        base = suite_fingerprint(["a", "b"], 100, 1, None, {})
        assert base == suite_fingerprint(["a", "b"], 100, 1, None, {})
        assert base != suite_fingerprint(["a"], 100, 1, None, {})
        assert base != suite_fingerprint(["a", "b"], 200, 1, None, {})
        assert base != suite_fingerprint(["a", "b"], 100, 2, None, {})
        assert base != suite_fingerprint(
            ["a", "b"], 100, 1, None, {"warm_caches": False}
        )


def _checkpoint(**overrides):
    fields = dict(
        space_fingerprint="sfp",
        model_fingerprint="mfp",
        cost_model_id="default",
        chunk_size=64,
        target_cpi=1.5,
        top_k=None,
        total=1000,
        next_start=256,
        indices=np.array([3, 7], dtype=np.int64),
        cpis=np.array([1.2, 1.1]),
        costs=np.array([0.5, 2.0]),
        meeting=42,
        peak=17,
        chunk_seconds=[0.01, 0.02],
    )
    fields.update(overrides)
    return SweepCheckpoint(**fields)


class TestSweepCheckpoint:
    def test_roundtrip_is_lossless(self, tmp_path):
        path = tmp_path / "sweep.npz"
        original = _checkpoint()
        original.save(path)
        loaded = SweepCheckpoint.load(path)
        assert loaded.space_fingerprint == "sfp"
        assert loaded.model_fingerprint == "mfp"
        assert loaded.chunk_size == 64
        assert loaded.target_cpi == 1.5
        assert loaded.top_k is None
        assert loaded.total == 1000
        assert loaded.next_start == 256
        assert loaded.meeting == 42
        assert loaded.peak == 17
        assert loaded.chunk_seconds == [0.01, 0.02]
        assert np.array_equal(loaded.indices, original.indices)
        assert np.array_equal(loaded.cpis, original.cpis)
        assert np.array_equal(loaded.costs, original.costs)
        assert loaded.created  # stamped on save
        assert not loaded.complete
        assert _checkpoint(next_start=1000).complete

    def test_save_is_atomic_no_temp_debris(self, tmp_path):
        path = tmp_path / "sweep.npz"
        _checkpoint().save(path)
        _checkpoint(next_start=512).save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["sweep.npz"]
        assert SweepCheckpoint.load(path).next_start == 512

    def test_unreadable_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "torn.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            SweepCheckpoint.load(path)
        with pytest.raises(CheckpointError):
            SweepCheckpoint.load(tmp_path / "missing.npz")

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        ckpt = _checkpoint()
        meta = ckpt._meta()
        meta["format"] = CHECKPOINT_FORMAT + 1
        with open(path, "wb") as stream:
            np.savez(
                stream,
                meta=np.array(json.dumps(meta)),
                indices=ckpt.indices,
                cpis=ckpt.cpis,
                costs=ckpt.costs,
                chunk_seconds=np.array(ckpt.chunk_seconds),
            )
        with pytest.raises(CheckpointError, match="format"):
            SweepCheckpoint.load(path)

    @pytest.mark.parametrize(
        "override, field",
        [
            ({"space_fp": "other"}, "design space"),
            ({"model_fp": "other"}, "model"),
            ({"cost_id": "custom"}, "cost model"),
            ({"chunk_size": 128}, "chunk size"),
            ({"target_cpi": 2.0}, "target CPI"),
            ({"top_k": 5}, "top-k cap"),
            ({"total": 999}, "point count"),
        ],
    )
    def test_validate_names_each_drifted_field(self, override, field):
        current = dict(
            space_fp="sfp",
            model_fp="mfp",
            cost_id="default",
            chunk_size=64,
            target_cpi=1.5,
            top_k=None,
            total=1000,
        )
        ckpt = _checkpoint()
        ckpt.validate(**current)  # identical inputs pass
        current.update(override)
        with pytest.raises(CheckpointMismatchError) as exc:
            ckpt.validate(**current)
        assert exc.value.field == field
        assert field in str(exc.value)


class TestSuiteCheckpoint:
    def test_roundtrip_and_mark(self, tmp_path):
        path = tmp_path / "suite.json"
        journal = SuiteCheckpoint(fingerprint="fp")
        journal.save(path)
        journal.mark("gcc", path)
        journal.mark("mcf", path)
        journal.mark("gcc", path)  # idempotent
        loaded = SuiteCheckpoint.load(path)
        assert loaded.fingerprint == "fp"
        assert loaded.completed == ["gcc", "mcf"]
        assert loaded.created

    def test_validate_rejects_other_configuration(self, tmp_path):
        journal = SuiteCheckpoint(fingerprint="fp")
        journal.validate("fp")
        with pytest.raises(
            CheckpointMismatchError, match="suite configuration"
        ):
            journal.validate("other")

    def test_garbage_and_wrong_kind_rejected(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            SuiteCheckpoint.load(garbage)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"format": 1, "kind": "sweep"}))
        with pytest.raises(CheckpointError, match="suite"):
            SuiteCheckpoint.load(wrong)
