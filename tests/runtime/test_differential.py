"""Differential tests: parallel == serial, cache hit == cold compute.

The runtime subsystem must be *invisible* in the results: fanning the
suite across processes or reloading artifacts from the cache has to
produce bit-identical numbers to the plain serial, from-scratch path.
"""

import numpy as np
import pytest

from repro.common.events import EventType
from repro.dse.pipeline import analyze
from repro.runtime.cache import ArtifactCache
from repro.runtime.runner import run_suite
from repro.workloads.suite import make_workload, suite_names

#: Small enough that analysing the full 12-workload suite twice stays
#: fast, large enough to exercise caches, branches and segmentation.
MACROS = 60

#: Probe design points for predicted-CPI comparisons.
PROBES = (
    {},
    {EventType.L1D: 2, EventType.FP_ADD: 3},
    {EventType.MEM_D: 200, EventType.L2D: 24},
)


def _assert_sessions_identical(mine, theirs):
    """Bit-exact equality of everything an AnalysisSession derives."""
    assert mine.workload == theirs.workload
    assert mine.config == theirs.config
    assert mine.baseline_result.cycles == theirs.baseline_result.cycles
    assert mine.baseline_result.stats == theirs.baseline_result.stats
    assert (mine.graph.edge_src == theirs.graph.edge_src).all()
    assert (mine.graph.edge_dst == theirs.graph.edge_dst).all()
    assert mine.graph.edge_charges == theirs.graph.edge_charges
    assert mine.rpstacks.num_segments == theirs.rpstacks.num_segments
    for a, b in zip(
        mine.rpstacks.segment_stacks, theirs.rpstacks.segment_stacks
    ):
        assert (a == b).all()
    base = mine.config.latency
    for overrides in PROBES:
        probe = base.with_overrides(overrides)
        for name, predictor in mine.predictors().items():
            assert predictor.predict_cycles(probe) == theirs.predictors()[
                name
            ].predict_cycles(probe), (name, overrides)


@pytest.fixture(scope="module")
def serial_report():
    return run_suite(macros=MACROS, jobs=1)


@pytest.fixture(scope="module")
def parallel_report():
    return run_suite(macros=MACROS, jobs=3)


def test_both_runs_cover_the_whole_suite(serial_report, parallel_report):
    assert [o.name for o in serial_report] == list(suite_names())
    assert [o.name for o in parallel_report] == list(suite_names())
    assert not serial_report.failed
    assert not parallel_report.failed
    assert parallel_report.jobs == 3


def test_parallel_equals_serial_for_every_workload(
    serial_report, parallel_report
):
    for mine, theirs in zip(serial_report, parallel_report):
        assert mine.name == theirs.name
        assert mine.baseline_cycles == theirs.baseline_cycles, mine.name
        _assert_sessions_identical(mine.session, theirs.session)


def test_cache_hit_equals_cold_analysis(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    workload = make_workload("leslie3d", MACROS)
    cold = analyze(workload, cache=cache)
    assert cache.misses == 1 and cache.hits == 0
    warm = analyze(workload, cache=cache)
    assert cache.hits == 1
    _assert_sessions_identical(cold, warm)
    # The warm session is fully functional, not a hollow shell: its
    # machine memo serves the baseline without a new timing run.
    assert warm.simulate(warm.config.latency).cycles == cold.baseline_result.cycles
    assert warm.machine.timing_runs == 0


def test_cache_is_isolated_per_input(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    analyze(make_workload("gamess", MACROS), cache=cache)
    analyze(make_workload("gamess", MACROS, seed=2), cache=cache)
    analyze(make_workload("gamess", MACROS), segment_length=64, cache=cache)
    assert cache.hits == 0
    assert cache.stats().entries == 3


def test_parallel_suite_through_shared_cache(tmp_path, serial_report):
    cache_dir = tmp_path / "cache"
    first = run_suite(macros=MACROS, jobs=3, cache=cache_dir)
    second = run_suite(macros=MACROS, jobs=3, cache=cache_dir)
    assert not first.failed and not second.failed
    assert all(o.cache_hit for o in second)
    for mine, theirs in zip(serial_report, second):
        _assert_sessions_identical(mine.session, theirs.session)
