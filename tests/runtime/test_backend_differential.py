"""Cross-backend differential suite (the tentpole's acceptance bar).

The same sharded sweep — and the full 12-workload suite — must merge to
byte-identical results on every executor backend: the single-host
``local`` pool, the pipe-protocol ``subprocess`` workers, and a
2-"host" loopback ``ssh`` fleet.  That includes a chaos drill where one
fleet host is killed mid-sweep: the shard requeues to the surviving
host with an attempt charged, and the front still matches.
"""

import json
import stat

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.core.model import RpStacksModel
from repro.dse.designspace import DesignSpace
from repro.dse.sweep import sweep_space
from repro.obs.observer import Observer
from repro.runtime import RetryPolicy, run_suite
from repro.runtime.executors import BackendSpec, HostSpec
from tests.chaos import faults


def vec(**units):
    out = np.zeros(NUM_EVENTS)
    for name, value in units.items():
        out[EventType[name]] = value
    return out


@pytest.fixture(scope="module")
def model():
    seg0 = np.stack([vec(FP_ADD=4, BASE=10), vec(L1D=5, LD=2, BASE=8)])
    seg1 = np.stack([vec(MEM_D=1, BASE=6), vec(L2D=7, BASE=20)])
    return RpStacksModel(
        [seg0, seg1], baseline=LatencyConfig(), num_uops=100
    )


@pytest.fixture(scope="module")
def space():
    """8 * 10 * 25 * 5 = 10,000 points — a dozen-odd 768-point chunks."""
    return DesignSpace.from_mapping(
        {
            EventType.L1D: list(range(1, 9)),
            EventType.FP_ADD: list(range(1, 11)),
            EventType.L2D: list(range(1, 26)),
            EventType.MEM_D: list(range(30, 130, 20)),
        }
    )


def loopback_fleet(tmp_path, dead_hosts=(), **kwargs):
    """A 2-host ssh fleet whose 'ssh client' is a local exec stub."""
    lines = ["#!/bin/sh", 'host="$1"', "shift"]
    for name in dead_hosts:
        lines.append(f'[ "$host" = "{name}" ] && exit 255')
    lines.append('exec "$@"')
    script = tmp_path / "fake-ssh.sh"
    script.write_text("\n".join(lines) + "\n")
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return BackendSpec(
        kind="ssh",
        hosts=(HostSpec("node-a", 1), HostSpec("node-b", 1)),
        ssh_command=(str(script),),
        connect_timeout=20.0,
        **kwargs,
    )


def result_json(result):
    """The result's exact JSON rendering, minus wall-clock throughput
    numbers (every other byte must be backend-independent)."""
    payload = result.as_dict()
    metrics = payload.pop("metrics")
    payload["num_chunks"] = metrics["num_chunks"]
    payload["candidates"] = [
        (repr(c.latency), repr(c.predicted_cpi), repr(c.cost))
        for c in result.candidates
    ]
    return json.dumps(payload, sort_keys=True)


def run_sweep(model, space, backend, retry=None):
    """One sharded sweep; returns its observer and the comparison key."""
    obs = Observer(enabled=True, progress_stream=None)
    result = sweep_space(
        model, space, chunk_size=768, jobs=2, obs=obs,
        backend=backend, retry=retry,
    )
    return obs, result_json(result)


def merged_metric_key(obs):
    """The deterministic slice of the merged worker metrics: points
    priced and target hits must match across backends (timings and
    respawn counters legitimately differ)."""
    return {
        "sweep.points": obs.counter("sweep.points").value,
        "sweep.meeting_target": obs.counter("sweep.meeting_target").value,
    }


@pytest.fixture(scope="module")
def local_sweep(model, space):
    return run_sweep(model, space, backend=None)


class TestSweepDifferential:
    def test_subprocess_front_and_metrics_match_local(
        self, model, space, local_sweep
    ):
        local_obs, local_json = local_sweep
        obs, swept_json = run_sweep(model, space, backend="subprocess")
        assert swept_json == local_json
        assert merged_metric_key(obs) == merged_metric_key(local_obs)

    def test_ssh_loopback_front_and_metrics_match_local(
        self, tmp_path, model, space, local_sweep
    ):
        local_obs, local_json = local_sweep
        obs, swept_json = run_sweep(
            model, space, backend=loopback_fleet(tmp_path)
        )
        assert swept_json == local_json
        assert merged_metric_key(obs) == merged_metric_key(local_obs)

    def test_host_killed_mid_sweep_requeues_and_matches(
        self, tmp_path, monkeypatch, model, space, local_sweep
    ):
        """The first chunk priced anywhere SIGKILLs its worker; with
        ``max_host_failures=1`` that kills the whole "host".  The shard
        must requeue to the survivor with an attempt charged and the
        merged front must still be byte-identical."""
        for key, value in faults.arm(
            {"pricing": {"kind": "sigkill", "attempts": 1}},
            tmp_path / "chaos",
        ).items():
            monkeypatch.setenv(key, value)
        _local_obs, local_json = local_sweep
        obs = Observer(enabled=True, progress_stream=None)
        result = sweep_space(
            faults.ChaosModel(model, probe_id="pricing"),
            space, chunk_size=768, jobs=2, obs=obs,
            backend=loopback_fleet(tmp_path, max_host_failures=1),
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.01, max_delay=0.05
            ),
        )
        assert result_json(result) == local_json
        # Not a sunk sweep: the killed shard was re-attempted...
        assert obs.counter("runner.retries").value >= 1
        assert obs.counter("runner.worker_deaths").value >= 1
        # ...because its host was declared dead and dropped.
        assert obs.counter("runner.dead_hosts").value == 1


def suite_key(report):
    """Per-workload results that must be bitwise backend-independent."""
    key = []
    for outcome in report:
        assert outcome.ok, outcome.error
        session = outcome.session
        key.append(
            (
                outcome.name,
                repr(session.baseline_cpi),
                tuple(
                    label
                    for label, _v in session.rpstacks.bottlenecks(
                        session.config.latency, top=3
                    )
                ),
            )
        )
    return key


class TestSuiteDifferential:
    def test_twelve_workload_suite_matches_across_backends(
        self, tmp_path
    ):
        """The full 12-workload suite analysed on each backend yields
        identical models (no cache, so every backend does the work)."""
        local = run_suite(macros=80, jobs=4)
        assert len(local) == 12
        expected = suite_key(local)
        subprocess_report = run_suite(
            macros=80, jobs=4, backend="subprocess"
        )
        assert suite_key(subprocess_report) == expected
        ssh_report = run_suite(
            macros=80, jobs=2, backend=loopback_fleet(tmp_path)
        )
        assert suite_key(ssh_report) == expected
