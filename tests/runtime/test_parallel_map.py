"""Generic pool-machinery tests: ordering, isolation, timeouts,
per-task timing and worker-side instrumentation capture."""

import time

import pytest

from repro.obs.observer import Observer
from repro.runtime.runner import TaskOutcome, parallel_map


def square(value):
    return value * value


def add(left, right):
    return left + right


def explode(value):
    raise RuntimeError(f"boom {value}")


def nap_and_square(value):
    time.sleep(0.02)
    return value * value


def test_serial_preserves_order():
    outcomes = parallel_map(square, [(3,), (1,), (2,)], jobs=1)
    assert [o.value for o in outcomes] == [9, 1, 4]
    assert all(o.ok for o in outcomes)


def test_parallel_preserves_order():
    outcomes = parallel_map(square, [(n,) for n in range(8)], jobs=3)
    assert [o.value for o in outcomes] == [n * n for n in range(8)]


def test_multiple_arguments_unpack():
    outcomes = parallel_map(add, [(1, 2), (3, 4)], jobs=1)
    assert [o.value for o in outcomes] == [3, 7]


@pytest.mark.parametrize("jobs", [1, 2])
def test_errors_are_isolated_with_tracebacks(jobs):
    outcomes = parallel_map(explode, [(1,), (2,)], jobs=jobs)
    assert not any(o.ok for o in outcomes)
    assert "boom 1" in outcomes[0].error
    assert "boom 2" in outcomes[1].error
    assert isinstance(outcomes[0], TaskOutcome)


def test_failed_task_does_not_sink_the_batch():
    outcomes = parallel_map(explode, [(1,)], jobs=1) + parallel_map(
        square, [(4,)], jobs=1
    )
    assert [o.ok for o in outcomes] == [False, True]


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        parallel_map(square, [(1,)], jobs=0)


@pytest.mark.parametrize("jobs", [1, 2])
def test_outcomes_carry_elapsed_seconds(jobs):
    outcomes = parallel_map(nap_and_square, [(2,), (3,)], jobs=jobs)
    assert [o.value for o in outcomes] == [4, 9]
    for outcome in outcomes:
        assert outcome.elapsed_seconds >= 0.02


def test_disabled_observer_captures_nothing():
    outcomes = parallel_map(square, [(2,)], jobs=2)
    assert outcomes[0].trace_events is None
    assert outcomes[0].metrics is None


def test_enabled_observer_absorbs_worker_spans():
    obs = Observer(enabled=True, progress_stream=None)
    outcomes = parallel_map(square, [(2,), (3,)], jobs=2, obs=obs)
    assert [o.value for o in outcomes] == [4, 9]
    # Each worker wrapped its task in a span shipped back with the result
    # and merged into the parent's timeline.
    for outcome in outcomes:
        assert outcome.trace_events
    names = {e["name"] for o in outcomes for e in o.trace_events}
    assert {"task.0", "task.1"} <= names
    totals = obs.tracer.totals_by_name()
    assert "task.0" in totals and "task.1" in totals


def test_serial_enabled_observer_records_task_spans():
    obs = Observer(enabled=True, progress_stream=None)
    parallel_map(square, [(2,), (3,)], jobs=1, obs=obs)
    spans = [s for s in obs.tracer.spans if s.name == "task"]
    assert [s.attrs["index"] for s in spans] == [0, 1]
