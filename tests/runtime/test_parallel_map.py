"""Generic pool-machinery tests: ordering, isolation, timeouts,
per-task timing, retries, pool respawn and worker-side instrumentation
capture."""

import multiprocessing
import time

import pytest

from repro.obs import clock
from repro.obs.observer import Observer
from repro.runtime.resilience import RetryPolicy
from repro.runtime.runner import TaskOutcome, parallel_map
from tests.chaos import faults


def square(value):
    return value * value


def add(left, right):
    return left + right


def explode(value):
    raise RuntimeError(f"boom {value}")


def nap_and_square(value):
    time.sleep(0.02)
    return value * value


def hang_then_square(value):
    time.sleep(30)
    return value * value


def assert_no_orphans(grace=5.0):
    """No worker process survives the parallel_map call that spawned it."""
    deadline = clock.perf_seconds() + grace
    while multiprocessing.active_children():
        if clock.perf_seconds() > deadline:
            raise AssertionError(
                f"orphaned workers: {multiprocessing.active_children()}"
            )
        time.sleep(0.05)


def _arm(plan, tmp_path, monkeypatch):
    for key, value in faults.arm(plan, tmp_path).items():
        monkeypatch.setenv(key, value)


def test_serial_preserves_order():
    outcomes = parallel_map(square, [(3,), (1,), (2,)], jobs=1)
    assert [o.value for o in outcomes] == [9, 1, 4]
    assert all(o.ok for o in outcomes)


def test_parallel_preserves_order():
    outcomes = parallel_map(square, [(n,) for n in range(8)], jobs=3)
    assert [o.value for o in outcomes] == [n * n for n in range(8)]


def test_multiple_arguments_unpack():
    outcomes = parallel_map(add, [(1, 2), (3, 4)], jobs=1)
    assert [o.value for o in outcomes] == [3, 7]


@pytest.mark.parametrize("jobs", [1, 2])
def test_errors_are_isolated_with_tracebacks(jobs):
    outcomes = parallel_map(explode, [(1,), (2,)], jobs=jobs)
    assert not any(o.ok for o in outcomes)
    assert "boom 1" in outcomes[0].error
    assert "boom 2" in outcomes[1].error
    assert isinstance(outcomes[0], TaskOutcome)


def test_failed_task_does_not_sink_the_batch():
    outcomes = parallel_map(explode, [(1,)], jobs=1) + parallel_map(
        square, [(4,)], jobs=1
    )
    assert [o.ok for o in outcomes] == [False, True]


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        parallel_map(square, [(1,)], jobs=0)


@pytest.mark.parametrize("jobs", [1, 2])
def test_outcomes_carry_elapsed_seconds(jobs):
    outcomes = parallel_map(nap_and_square, [(2,), (3,)], jobs=jobs)
    assert [o.value for o in outcomes] == [4, 9]
    for outcome in outcomes:
        assert outcome.elapsed_seconds >= 0.02


def test_disabled_observer_captures_nothing():
    outcomes = parallel_map(square, [(2,)], jobs=2)
    assert outcomes[0].trace_events is None
    assert outcomes[0].metrics is None


def test_enabled_observer_absorbs_worker_spans():
    obs = Observer(enabled=True, progress_stream=None)
    outcomes = parallel_map(square, [(2,), (3,)], jobs=2, obs=obs)
    assert [o.value for o in outcomes] == [4, 9]
    # Each worker wrapped its task in a span shipped back with the result
    # and merged into the parent's timeline.
    for outcome in outcomes:
        assert outcome.trace_events
    names = {e["name"] for o in outcomes for e in o.trace_events}
    assert {"task.0", "task.1"} <= names
    totals = obs.tracer.totals_by_name()
    assert "task.0" in totals and "task.1" in totals


def test_serial_enabled_observer_records_task_spans():
    obs = Observer(enabled=True, progress_stream=None)
    parallel_map(square, [(2,), (3,)], jobs=1, obs=obs)
    spans = [s for s in obs.tracer.spans if s.name == "task"]
    assert [s.attrs["index"] for s in spans] == [0, 1]


class TestDeadlines:
    def test_timeout_records_real_elapsed_and_reaps_straggler(self):
        """A straggler is reported with its *actual* run time (not 0.0),
        flagged timed_out, and its worker is reaped — while innocent
        tasks in the same batch still complete."""
        tick = clock.perf_seconds()
        outcomes = parallel_map(
            hang_then_square,
            [(7,)],
            jobs=2,
            timeout=1.0,
        )
        wall = clock.perf_seconds() - tick
        straggler = outcomes[0]
        assert not straggler.ok
        assert straggler.timed_out
        assert straggler.elapsed_seconds >= 0.9
        assert straggler.elapsed_seconds < wall + 0.1
        assert "timed out after" in straggler.error
        assert wall < 15  # reaped, not waited out
        assert_no_orphans()

    def test_innocent_tasks_survive_a_straggler(self):
        outcomes = parallel_map(
            nap_and_square,
            [(2,), (3,), (4,), (5,)],
            jobs=2,
            timeout=5.0,
        )
        assert [o.value for o in outcomes] == [4, 9, 16, 25]
        assert not any(o.timed_out for o in outcomes)
        assert_no_orphans()


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failures_retry_to_success(
        self, tmp_path, monkeypatch, jobs
    ):
        _arm({"0": {"kind": "raise", "attempts": 2}}, tmp_path, monkeypatch)
        retry = RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.02
        )
        obs = Observer(enabled=True, progress_stream=None)
        outcomes = parallel_map(
            faults.chaos_task, [(0,), (1,)], jobs=jobs, retry=retry,
            obs=obs,
        )
        assert [o.value for o in outcomes] == [0, 1]
        assert outcomes[0].attempts == 3
        assert outcomes[1].attempts == 1
        assert obs.metrics.counter_value("runner.retries") == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exhausted_retries_fail_with_attempt_count(
        self, tmp_path, monkeypatch, jobs
    ):
        _arm(
            {"0": {"kind": "raise", "attempts": 99}}, tmp_path, monkeypatch
        )
        retry = RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.02
        )
        outcomes = parallel_map(
            faults.chaos_task, [(0,), (1,)], jobs=jobs, retry=retry
        )
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert "ChaosError" in outcomes[0].error
        assert outcomes[1].ok

    def test_no_retry_policy_fails_on_first_error(
        self, tmp_path, monkeypatch
    ):
        _arm({"0": {"kind": "raise", "attempts": 1}}, tmp_path, monkeypatch)
        outcomes = parallel_map(faults.chaos_task, [(0,)], jobs=2)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 1


class TestPoolBreaks:
    def test_sigkill_respawns_pool_and_completes(
        self, tmp_path, monkeypatch
    ):
        _arm(
            {"1": {"kind": "sigkill", "attempts": 1}}, tmp_path, monkeypatch
        )
        retry = RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.02
        )
        obs = Observer(enabled=True, progress_stream=None)
        outcomes = parallel_map(
            faults.chaos_task,
            [(0,), (1,), (2,), (3,)],
            jobs=2,
            retry=retry,
            obs=obs,
        )
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert outcomes[1].attempts >= 2
        assert obs.metrics.counter_value("runner.pool_respawns") >= 1
        assert_no_orphans()

    def test_worker_death_without_retry_fails_loudly(
        self, tmp_path, monkeypatch
    ):
        _arm(
            {"0": {"kind": "sigkill", "attempts": 99}}, tmp_path, monkeypatch
        )
        outcomes = parallel_map(faults.chaos_task, [(0,)], jobs=2)
        assert not outcomes[0].ok
        assert "BrokenProcessPool" in outcomes[0].error
        assert_no_orphans()


class TestOnResult:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_callback_fires_once_per_final_outcome(self, jobs):
        seen = []
        parallel_map(
            square,
            [(n,) for n in range(4)],
            jobs=jobs,
            on_result=lambda i, o: seen.append((i, o.ok, o.value)),
        )
        assert sorted(seen) == [(n, True, n * n) for n in range(4)]
