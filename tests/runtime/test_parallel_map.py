"""Generic pool-machinery tests: ordering, isolation, timeouts."""

import pytest

from repro.runtime.runner import TaskOutcome, parallel_map


def square(value):
    return value * value


def add(left, right):
    return left + right


def explode(value):
    raise RuntimeError(f"boom {value}")


def test_serial_preserves_order():
    outcomes = parallel_map(square, [(3,), (1,), (2,)], jobs=1)
    assert [o.value for o in outcomes] == [9, 1, 4]
    assert all(o.ok for o in outcomes)


def test_parallel_preserves_order():
    outcomes = parallel_map(square, [(n,) for n in range(8)], jobs=3)
    assert [o.value for o in outcomes] == [n * n for n in range(8)]


def test_multiple_arguments_unpack():
    outcomes = parallel_map(add, [(1, 2), (3, 4)], jobs=1)
    assert [o.value for o in outcomes] == [3, 7]


@pytest.mark.parametrize("jobs", [1, 2])
def test_errors_are_isolated_with_tracebacks(jobs):
    outcomes = parallel_map(explode, [(1,), (2,)], jobs=jobs)
    assert not any(o.ok for o in outcomes)
    assert "boom 1" in outcomes[0].error
    assert "boom 2" in outcomes[1].error
    assert isinstance(outcomes[0], TaskOutcome)


def test_failed_task_does_not_sink_the_batch():
    outcomes = parallel_map(explode, [(1,)], jobs=1) + parallel_map(
        square, [(4,)], jobs=1
    )
    assert [o.ok for o in outcomes] == [False, True]


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        parallel_map(square, [(1,)], jobs=0)
