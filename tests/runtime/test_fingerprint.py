"""Property-based tests of cache-key fingerprinting and serialisers.

The cache is only sound if the fingerprint is a pure function of the
analysis inputs (equal inputs -> equal keys) that separates *every*
field capable of changing the result (any perturbation -> distinct
key), and if the artifact serialisers are lossless.  Hypothesis sweeps
the input space in the style of ``tests/simulator/test_sim_properties``.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import MicroarchConfig, baseline_config
from repro.common.events import LATENCY_DOMAIN, NUM_EVENTS, EventType
from repro.core.generator import generate_rpstacks
from repro.core.io import load_model, save_model
from repro.core.reduction import ReductionPolicy
from repro.graphmodel.builder import BuilderOptions, build_graph
from repro.runtime.fingerprint import (
    analysis_fingerprint,
    workload_fingerprint,
)
from repro.runtime.graphio import load_graph, save_graph
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.suite import make_workload

specs = st.builds(
    WorkloadSpec,
    name=st.just("fp"),
    num_macro_ops=st.integers(min_value=20, max_value=60),
    p_load=st.floats(min_value=0.0, max_value=0.3),
    p_store=st.floats(min_value=0.0, max_value=0.1),
    p_fp_add=st.floats(min_value=0.0, max_value=0.2),
    p_branch=st.floats(min_value=0.0, max_value=0.2),
    pointer_chase_fraction=st.floats(min_value=0.0, max_value=0.8),
    dep_distance_mean=st.floats(min_value=1.0, max_value=20.0),
)


@given(spec=specs, seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=25, deadline=None)
def test_equal_inputs_give_equal_keys(spec, seed):
    workload_a = generate(spec, seed=seed)
    workload_b = generate(spec, seed=seed)
    config = baseline_config()
    assert workload_fingerprint(workload_a) == workload_fingerprint(
        workload_b
    )
    assert analysis_fingerprint(workload_a, config) == analysis_fingerprint(
        workload_b, config
    )


@given(
    spec=specs,
    seed=st.integers(min_value=0, max_value=10 ** 6),
    other_seed=st.integers(min_value=0, max_value=10 ** 6),
)
@settings(max_examples=25, deadline=None)
def test_different_seed_gives_distinct_key(spec, seed, other_seed):
    if seed == other_seed:
        return
    workload_a = generate(spec, seed=seed)
    workload_b = generate(spec, seed=other_seed)
    # Distinct seeds virtually always produce distinct streams; when the
    # streams genuinely coincide, sharing a key is the *correct*
    # content-addressed behaviour.
    if workload_a.uops != workload_b.uops:
        assert workload_fingerprint(workload_a) != workload_fingerprint(
            workload_b
        )


@pytest.fixture(scope="module")
def fp_workload():
    return make_workload("gamess", 40)


@given(
    event=st.sampled_from(sorted(LATENCY_DOMAIN, key=int)),
    delta=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=30, deadline=None)
def test_one_latency_perturbation_changes_key(fp_workload, event, delta):
    base = baseline_config()
    perturbed = base.with_latency_overrides(
        {event: base.latency[event] + delta}
    )
    assert analysis_fingerprint(fp_workload, base) != analysis_fingerprint(
        fp_workload, perturbed
    )


@given(
    field_name=st.sampled_from(
        sorted(ReductionPolicy.__dataclass_fields__)
    ),
)
@settings(max_examples=20, deadline=None)
def test_any_policy_knob_changes_key(fp_workload, field_name):
    config = baseline_config()
    base_policy = ReductionPolicy()
    value = getattr(base_policy, field_name)
    if isinstance(value, bool):
        perturbed = dataclasses.replace(base_policy, **{field_name: not value})
    elif isinstance(value, float):
        perturbed = dataclasses.replace(
            base_policy, **{field_name: value / 2}
        )
    else:
        perturbed = dataclasses.replace(
            base_policy, **{field_name: value + 1}
        )
    assert analysis_fingerprint(
        fp_workload, config, policy=base_policy
    ) != analysis_fingerprint(fp_workload, config, policy=perturbed)


@given(
    field_name=st.sampled_from(
        sorted(BuilderOptions.__dataclass_fields__)
    ),
)
@settings(max_examples=14, deadline=None)
def test_any_builder_option_changes_key(fp_workload, field_name):
    config = baseline_config()
    base_options = BuilderOptions()
    flipped = dataclasses.replace(
        base_options, **{field_name: not getattr(base_options, field_name)}
    )
    assert analysis_fingerprint(
        fp_workload, config, builder_options=base_options
    ) != analysis_fingerprint(
        fp_workload, config, builder_options=flipped
    )


def test_segment_length_and_warm_caches_change_key(fp_workload):
    config = baseline_config()
    base = analysis_fingerprint(fp_workload, config)
    assert base != analysis_fingerprint(
        fp_workload, config, segment_length=128
    )
    assert base != analysis_fingerprint(
        fp_workload, config, warm_caches=False
    )


def test_structure_domain_changes_key(fp_workload):
    base = baseline_config()
    smaller_rob = dataclasses.replace(
        base, core=dataclasses.replace(base.core, rob_size=64)
    )
    prefetching = dataclasses.replace(base, prefetcher="stride")
    assert analysis_fingerprint(fp_workload, base) != analysis_fingerprint(
        fp_workload, smaller_rob
    )
    assert analysis_fingerprint(fp_workload, base) != analysis_fingerprint(
        fp_workload, prefetching
    )


# ---- lossless round trips ------------------------------------------------


@given(spec=specs, seed=st.integers(min_value=0, max_value=10 ** 4))
@settings(max_examples=10, deadline=None)
def test_graph_roundtrip_is_lossless(tmp_path_factory, spec, seed):
    from repro.simulator.core import simulate

    workload = generate(spec, seed=seed)
    result = simulate(workload, baseline_config())
    graph = build_graph(result)
    path = tmp_path_factory.mktemp("graphs") / "g.npz"
    save_graph(graph, path)
    loaded = load_graph(path)
    assert loaded.num_uops == graph.num_uops
    assert (loaded.edge_src == graph.edge_src).all()
    assert (loaded.edge_dst == graph.edge_dst).all()
    assert loaded.edge_charges == graph.edge_charges
    base = baseline_config().latency
    assert loaded.longest_path_length(base) == graph.longest_path_length(
        base
    )


@given(
    spec=specs,
    seed=st.integers(min_value=0, max_value=10 ** 4),
    segment_length=st.sampled_from([16, 64, 256]),
)
@settings(max_examples=10, deadline=None)
def test_model_roundtrip_is_lossless(
    tmp_path_factory, spec, seed, segment_length
):
    from repro.simulator.core import simulate

    workload = generate(spec, seed=seed)
    config = baseline_config()
    result = simulate(workload, config)
    graph = build_graph(result)
    model = generate_rpstacks(
        graph, config.latency, segment_length=segment_length
    )
    path = tmp_path_factory.mktemp("models") / "m.npz"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.num_uops == model.num_uops
    assert loaded.num_segments == model.num_segments
    assert loaded.baseline == model.baseline
    for mine, theirs in zip(model.segment_stacks, loaded.segment_stacks):
        assert (mine == theirs).all()
    assert loaded.stats.nodes_visited == model.stats.nodes_visited
    assert loaded.stats.candidate_stacks == model.stats.candidate_stacks
    assert loaded.stats.reductions == model.stats.reductions
    probe = config.latency.with_overrides({EventType.L1D: 9})
    assert loaded.predict_cycles(probe) == model.predict_cycles(probe)
