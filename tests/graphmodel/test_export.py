"""DOT export tests."""

import pytest

from repro.common.config import baseline_config
from repro.graphmodel.builder import build_graph
from repro.graphmodel.export import to_dot
from repro.simulator.core import simulate
from repro.workloads.kernels import serial_chain


@pytest.fixture(scope="module")
def graph():
    return build_graph(
        simulate(serial_chain(length=12), baseline_config())
    )


def test_dot_structure(graph):
    dot = to_dot(graph, first=0, count=4)
    assert dot.startswith("digraph dependence {")
    assert dot.rstrip().endswith("}")
    assert "rankdir=LR" in dot


def test_one_cluster_per_uop(graph):
    dot = to_dot(graph, first=0, count=4)
    assert dot.count("subgraph cluster_") == 4


def test_edges_within_window_only(graph):
    dot = to_dot(graph, first=2, count=3)
    for line in dot.splitlines():
        if "->" in line:
            src = int(line.split("->")[0].strip().lstrip("n"))
            assert 2 * 13 <= src < 5 * 13  # NODES_PER_UOP == 13


def test_event_labels_present(graph):
    dot = to_dot(graph, first=0, count=6)
    assert "Fadd" in dot  # the chain's execution edges


def test_critical_path_highlighted(graph):
    dot = to_dot(graph, first=0, count=6, highlight_critical=True)
    assert "color=red" in dot
    plain = to_dot(graph, first=0, count=6, highlight_critical=False)
    assert "color=red" not in plain


def test_window_validation(graph):
    with pytest.raises(ValueError):
        to_dot(graph, first=10 ** 6, count=4)
    with pytest.raises(ValueError):
        to_dot(graph, count=0)
