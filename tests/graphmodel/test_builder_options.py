"""BuilderOptions ablation tests: constraint families really toggle."""

import pytest

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.graphmodel.builder import BuilderOptions, build_graph
from repro.graphmodel.nodes import Stage, node_id
from repro.simulator.core import simulate
from repro.workloads.kernels import pointer_ring, stream_triad
from repro.workloads.suite import make_workload


def edge_pairs(graph):
    return {
        (int(s), int(d))
        for s, d in zip(graph.edge_src, graph.edge_dst)
    }


@pytest.fixture(scope="module")
def mixed_result(tiny_workload):
    return simulate(tiny_workload, baseline_config())


def test_default_options_build_full_model(mixed_result):
    full = build_graph(mixed_result)
    explicit = build_graph(mixed_result, BuilderOptions())
    assert full.num_edges == explicit.num_edges


def test_disabling_address_path_removes_ar_nodes(mixed_result):
    graph = build_graph(
        mixed_result, BuilderOptions(address_path=False)
    )
    pairs = edge_pairs(graph)
    for uop in mixed_result.workload:
        if uop.is_memory:
            ar1 = node_id(uop.seq, Stage.AR1)
            assert not any(dst == ar1 for _src, dst in pairs)


def test_disabling_address_path_keeps_address_dependencies(mixed_result):
    graph = build_graph(
        mixed_result, BuilderOptions(address_path=False)
    )
    pairs = edge_pairs(graph)
    for record, uop in zip(mixed_result.uops, mixed_result.workload):
        if uop.is_memory:
            for producer in record.addr_producers:
                if producer >= 0:
                    assert (
                        node_id(producer, Stage.P),
                        node_id(record.seq, Stage.R),
                    ) in pairs


def test_each_flag_removes_edges(mixed_result):
    full_edges = build_graph(mixed_result).num_edges
    for flag in (
        "address_path",
        "load_store_ordering",
        "fetch_buffer_edge",
    ):
        options = BuilderOptions(**{flag: False})
        reduced = build_graph(mixed_result, options).num_edges
        assert reduced < full_edges, flag
    # The issue-dependency edge only exists when the IQ actually filled
    # up during the run — absent here, toggling it is a no-op.
    assert not any(r.iq_freer >= 0 for r in mixed_result.uops)
    no_issue = build_graph(
        mixed_result, BuilderOptions(issue_dependency=False)
    )
    assert no_issue.num_edges == full_edges


def test_issue_dependency_witness_appears_under_iq_pressure():
    # A memory-bound stream with many in-flight long loads fills the
    # 36-entry issue queue, producing iq_freer witnesses and edges.
    result = simulate(
        make_workload("libquantum", 250), baseline_config()
    )
    assert any(r.iq_freer >= 0 for r in result.uops)
    full = build_graph(result).num_edges
    ablated = build_graph(
        result, BuilderOptions(issue_dependency=False)
    ).num_edges
    assert ablated < full


def test_disabled_address_path_loses_load_accuracy():
    """The pointer ring's time is dominated by the AGU+DTLB address
    path; removing those constraints makes the graph under-predict."""
    config = baseline_config()
    result = simulate(pointer_ring(length=120), config)
    full = build_graph(result)
    ablated = build_graph(result, BuilderOptions(address_path=False))
    base = config.latency
    full_error = abs(
        full.longest_path_length(base) - result.cycles
    ) / result.cycles
    ablated_prediction = ablated.longest_path_length(base)
    assert full_error < 0.05
    assert ablated_prediction < full.longest_path_length(base)


def test_disabled_store_ordering_loses_triad_accuracy():
    """Triad is serialised by conservative load/store ordering; without
    those edges the graph thinks iterations overlap freely."""
    config = baseline_config()
    result = simulate(stream_triad(iterations=40), config)
    full = build_graph(result)
    ablated = build_graph(
        result, BuilderOptions(load_store_ordering=False)
    )
    base = config.latency
    assert full.longest_path_length(base) == pytest.approx(
        result.cycles, rel=0.06
    )
    assert (
        ablated.longest_path_length(base)
        < 0.7 * full.longest_path_length(base)
    )


def test_disabled_macro_commit_still_orders_completion(mixed_result):
    graph = build_graph(
        mixed_result, BuilderOptions(uop_commit_dependency=False)
    )
    pairs = edge_pairs(graph)
    # Every µop still gates its own RC on its own P.
    for uop in mixed_result.workload:
        assert (
            node_id(uop.seq, Stage.P),
            node_id(uop.seq, Stage.RC),
        ) in pairs


def test_ablated_graphs_stay_acyclic(mixed_result):
    options = BuilderOptions(
        issue_dependency=False,
        address_path=False,
        load_store_ordering=False,
        cache_line_sharing=False,
        uop_commit_dependency=False,
        phys_reg_edges=False,
        fetch_buffer_edge=False,
    )
    graph = build_graph(mixed_result, options)
    topo = graph.topological_order()
    assert len(topo) == graph.num_nodes
