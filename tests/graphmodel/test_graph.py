"""Dependence-graph container tests on small hand-built graphs."""

import numpy as np
import pytest

from repro.common.config import LatencyConfig
from repro.common.events import NUM_EVENTS, EventType
from repro.graphmodel.graph import DependenceGraph, GraphBuildError
from repro.graphmodel.nodes import NODES_PER_UOP, Stage, node_id


def diamond_graph():
    """Two µops; two parallel paths from F0 with different charges.

    F0 -> E0 (FP_ADD x2), F0 -> P0 (L1D x1, LD x1), both -> C1 (sink).
    Node ids are arbitrary grid positions; only the edges matter.
    """
    f0 = node_id(0, Stage.F)
    e0 = node_id(0, Stage.E)
    p0 = node_id(0, Stage.P)
    sink = node_id(1, Stage.C)
    src = [f0, f0, e0, p0]
    dst = [e0, p0, sink, sink]
    charges = [
        ((EventType.FP_ADD, 2),),
        ((EventType.L1D, 1), (EventType.LD, 1)),
        (),
        ((EventType.BASE, 1),),
    ]
    return DependenceGraph(2, src, dst, charges)


class TestLongestPath:
    def test_picks_heavier_branch_at_baseline(self):
        graph = diamond_graph()
        base = LatencyConfig()  # FP_ADD=6 -> 12 vs L1D+LD=6 (+1 base)
        assert graph.longest_path_length(base) == 12.0

    def test_repricing_switches_the_winner(self):
        graph = diamond_graph()
        optimised = LatencyConfig().with_overrides({EventType.FP_ADD: 1})
        # FP branch: 2 cycles; memory branch: 4 + 2 + 1(base) = 7.
        assert graph.longest_path_length(optimised) == 7.0

    def test_critical_path_stack_decomposes_length(self):
        graph = diamond_graph()
        base = LatencyConfig()
        length, stack = graph.critical_path(base)
        assert stack @ base.as_vector() == length
        assert stack[EventType.FP_ADD] == 2

    def test_critical_path_stack_follows_the_winner(self):
        graph = diamond_graph()
        optimised = LatencyConfig().with_overrides({EventType.FP_ADD: 1})
        _length, stack = graph.critical_path(optimised)
        assert stack[EventType.L1D] == 1
        assert stack[EventType.FP_ADD] == 0

    def test_node_distances_monotone_along_edges(self):
        graph = diamond_graph()
        dist = graph.node_distances(LatencyConfig())
        weights = graph.edge_weights(LatencyConfig())
        for e in range(graph.num_edges):
            s = int(graph.edge_src[e])
            d = int(graph.edge_dst[e])
            assert dist[d] >= dist[s] + weights[e]


class TestStructure:
    def test_edge_weights_price_charges(self):
        graph = diamond_graph()
        weights = graph.edge_weights(LatencyConfig())
        total = weights.sum()
        assert total == 12 + 6 + 0 + 1

    def test_charge_vector_round_trip(self):
        graph = diamond_graph()
        vec = graph.charge_vector(((EventType.L2D, 2), (EventType.BASE, 3)))
        assert vec[EventType.L2D] == 2
        assert vec[EventType.BASE] == 3
        assert vec.sum() == 5

    def test_edge_charge_vectors_match_weights(self):
        graph = diamond_graph()
        theta = LatencyConfig().as_vector()
        dense = graph.edge_charge_vectors() @ theta
        assert np.allclose(dense, graph.edge_weights(LatencyConfig()))

    def test_topological_order_is_complete_and_valid(self):
        graph = diamond_graph()
        topo = graph.topological_order()
        assert len(topo) == graph.num_nodes
        position = {node: i for i, node in enumerate(topo)}
        for e in range(graph.num_edges):
            assert (
                position[int(graph.edge_src[e])]
                < position[int(graph.edge_dst[e])]
            )

    def test_cycle_detection(self):
        a, b = node_id(0, Stage.F), node_id(0, Stage.E)
        graph = DependenceGraph(1, [a, b], [b, a], [(), ()])
        with pytest.raises(GraphBuildError, match="cycle"):
            graph.topological_order()

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphBuildError):
            DependenceGraph(1, [0], [1, 2], [()])

    def test_too_many_event_pairs_rejected(self):
        charge = (
            (EventType.L1D, 1),
            (EventType.L2D, 1),
            (EventType.MEM_D, 1),
            (EventType.DTLB, 1),
        )
        with pytest.raises(GraphBuildError, match="pairs"):
            DependenceGraph(1, [0], [1], [charge])

    def test_sink_is_last_commit_node(self):
        graph = diamond_graph()
        assert graph.sink == node_id(1, Stage.C)
        assert graph.num_nodes == 2 * NODES_PER_UOP
