"""Criticality / slack / interaction-cost tests."""

import numpy as np
import pytest

from repro.common.config import LatencyConfig, baseline_config
from repro.common.events import EventType
from repro.graphmodel.builder import build_graph
from repro.graphmodel.criticality import (
    CriticalityAnalysis,
    interaction_cost,
    interaction_matrix,
)
from repro.graphmodel.graph import DependenceGraph
from repro.graphmodel.nodes import Stage, node_id


def diamond_graph():
    """F0 -> {E0 (FP_ADD x2) | P0 (L1D x1)} -> C1."""
    f0 = node_id(0, Stage.F)
    e0 = node_id(0, Stage.E)
    p0 = node_id(0, Stage.P)
    sink = node_id(1, Stage.C)
    return DependenceGraph(
        2,
        [f0, f0, e0, p0],
        [e0, p0, sink, sink],
        [
            ((EventType.FP_ADD, 2),),
            ((EventType.L1D, 1),),
            (),
            (),
        ],
    )


class TestSlack:
    def test_critical_branch_has_zero_slack(self):
        graph = diamond_graph()
        analysis = CriticalityAnalysis(graph, LatencyConfig())
        # FP branch: 12 cycles; memory branch: 4 cycles.
        assert analysis.length == 12.0
        slacks = [analysis.edge_slack(e) for e in range(graph.num_edges)]
        # Edge order after dst-sorting: (f0->e0), (f0->p0), then sinks.
        fp_edges = [
            e
            for e in range(graph.num_edges)
            if graph.edge_charges[e]
            and graph.edge_charges[e][0][0] is EventType.FP_ADD
        ]
        mem_edges = [
            e
            for e in range(graph.num_edges)
            if graph.edge_charges[e]
            and graph.edge_charges[e][0][0] is EventType.L1D
        ]
        assert analysis.edge_slack(fp_edges[0]) == 0.0
        assert analysis.edge_slack(mem_edges[0]) == 8.0

    def test_slack_predicts_tolerable_growth(self):
        graph = diamond_graph()
        base = LatencyConfig()
        analysis = CriticalityAnalysis(graph, base)
        # Growing L1D by its slack (8 cycles / 1 unit) leaves the length
        # unchanged; growing it beyond increases it.
        same = base.with_overrides({EventType.L1D: 12})
        assert graph.longest_path_length(same) == analysis.length
        longer = base.with_overrides({EventType.L1D: 13})
        assert graph.longest_path_length(longer) > analysis.length

    def test_critical_nodes(self):
        graph = diamond_graph()
        analysis = CriticalityAnalysis(graph, LatencyConfig())
        assert analysis.node_is_critical(node_id(0, Stage.F))
        assert analysis.node_is_critical(node_id(0, Stage.E))
        assert not analysis.node_is_critical(node_id(0, Stage.P))

    def test_criticality_switches_with_pricing(self):
        graph = diamond_graph()
        optimised = LatencyConfig().with_overrides({EventType.FP_ADD: 1})
        analysis = CriticalityAnalysis(graph, optimised)
        assert analysis.node_is_critical(node_id(0, Stage.P))
        assert not analysis.node_is_critical(node_id(0, Stage.E))


class TestOnRealGraph:
    @pytest.fixture(scope="class")
    def real(self, tiny_result):
        graph = build_graph(tiny_result)
        return graph, CriticalityAnalysis(
            graph, tiny_result.config.latency
        )

    def test_length_matches_longest_path(self, real, tiny_result):
        graph, analysis = real
        assert analysis.length == graph.longest_path_length(
            tiny_result.config.latency
        )

    def test_critical_edges_form_nonempty_set(self, real):
        _graph, analysis = real
        critical = analysis.critical_edges()
        assert critical
        assert all(edge.is_critical for edge in critical)

    def test_all_edge_slacks_nonnegative(self, real):
        graph, analysis = real
        for e in range(0, graph.num_edges, 7):  # sample for speed
            assert analysis.edge_slack(e) >= 0.0

    def test_criticality_fraction_in_unit_interval(self, real):
        _graph, analysis = real
        fraction = analysis.criticality_fraction()
        assert 0.0 < fraction <= 1.0


class TestInteractionCost:
    def test_parallel_events_interact_negatively(self):
        # In the diamond, FP (12) hides memory (4): optimising FP alone
        # is worth less than its isolated cost because memory emerges.
        graph = diamond_graph()
        base = LatencyConfig()
        cost = interaction_cost(
            graph, base, {EventType.FP_ADD: 1}, {EventType.L1D: 1}
        )
        assert cost < 0

    def test_serial_independent_events_have_zero_cost(self):
        # Two events on the same serial chain: lengths add, so the
        # combined saving is exactly the sum of the individual savings.
        a = node_id(0, Stage.F)
        b = node_id(0, Stage.E)
        c = node_id(1, Stage.C)
        graph = DependenceGraph(
            2,
            [a, b],
            [b, c],
            [((EventType.FP_ADD, 1),), ((EventType.L1D, 1),)],
        )
        cost = interaction_cost(
            graph,
            LatencyConfig(),
            {EventType.FP_ADD: 1},
            {EventType.L1D: 1},
        )
        assert cost == 0.0

    def test_overlapping_overrides_rejected(self):
        graph = diamond_graph()
        with pytest.raises(ValueError, match="disjoint"):
            interaction_cost(
                graph,
                LatencyConfig(),
                {EventType.FP_ADD: 1},
                {EventType.FP_ADD: 2},
            )

    def test_matrix_is_symmetric_with_zero_diagonal(self, tiny_result):
        graph = build_graph(tiny_result)
        optimisations = [
            (EventType.L1D, 1),
            (EventType.FP_ADD, 1),
            (EventType.LD, 1),
        ]
        matrix = interaction_matrix(
            graph, tiny_result.config.latency, optimisations
        )
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matrix_entries_match_pairwise_calls(self, tiny_result):
        graph = build_graph(tiny_result)
        base = tiny_result.config.latency
        optimisations = [(EventType.L1D, 1), (EventType.FP_ADD, 1)]
        matrix = interaction_matrix(graph, base, optimisations)
        direct = interaction_cost(
            graph, base, {EventType.L1D: 1}, {EventType.FP_ADD: 1}
        )
        assert matrix[0, 1] == direct


class TestOpclassHistogram:
    def test_serial_fp_chain_is_fp_critical(self):
        from repro.common.config import baseline_config
        from repro.simulator.core import simulate
        from repro.workloads.kernels import serial_chain
        from repro.isa.uop import OpClass

        result = simulate(serial_chain(OpClass.FP_ADD, 60), baseline_config())
        graph = build_graph(result)
        analysis = CriticalityAnalysis(graph, result.config.latency)
        histogram = analysis.critical_opclass_histogram(result.workload)
        assert set(histogram) == {"FP_ADD"}
        assert histogram["FP_ADD"] >= 55  # nearly every link is critical

    def test_histogram_counts_match_critical_uops(self, tiny_result):
        graph = build_graph(tiny_result)
        analysis = CriticalityAnalysis(graph, tiny_result.config.latency)
        histogram = analysis.critical_opclass_histogram(
            tiny_result.workload
        )
        assert sum(histogram.values()) == len(analysis.critical_uops())
