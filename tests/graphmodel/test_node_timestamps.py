"""Per-µop agreement between graph node distances and simulator times.

Stronger than comparing total cycles: for every µop, the graph's
longest-path distance to its commit node should track the simulator's
commit timestamp.  Exact equality is not expected (the graph omits FU
contention, LSQ and MSHR effects), but per-µop drift must stay small and
must never make the graph *later* than the machine it lower-bounds.
"""

import pytest

from repro.common.config import baseline_config
from repro.graphmodel.builder import build_graph
from repro.graphmodel.nodes import Stage, node_id
from repro.simulator.core import simulate
from repro.workloads.kernels import daxpy, pointer_ring, serial_chain
from repro.workloads.suite import make_workload


def commit_distances(result):
    graph = build_graph(result)
    dist = graph.node_distances(result.config.latency)
    return [
        dist[node_id(i, Stage.C)] for i in range(len(result.workload))
    ]


@pytest.mark.parametrize(
    "factory",
    [
        lambda: serial_chain(length=80),
        lambda: pointer_ring(length=80),
        lambda: daxpy(iterations=20),
    ],
    ids=["serial-chain", "pointer-ring", "daxpy"],
)
def test_kernel_commit_times_match_per_uop(factory):
    result = simulate(factory(), baseline_config())
    distances = commit_distances(result)
    for i, record in enumerate(result.uops):
        assert distances[i] == pytest.approx(record.t_commit, abs=8), i


@pytest.mark.parametrize("name", ["gamess", "bzip2"])
def test_suite_commit_times_track_per_uop(name):
    result = simulate(make_workload(name, 150), baseline_config())
    distances = commit_distances(result)
    worst = max(
        abs(d - r.t_commit)
        for d, r in zip(distances, result.uops)
    )
    # Per-µop drift bounded by a small constant fraction of the run.
    assert worst <= max(10, 0.05 * result.cycles)


def test_graph_commit_distance_never_exceeds_simulator(tiny_result):
    distances = commit_distances(tiny_result)
    for d, record in zip(distances, tiny_result.uops):
        assert d <= record.t_commit + 1


def test_commit_distances_are_monotone(tiny_result):
    distances = commit_distances(tiny_result)
    assert all(b >= a for a, b in zip(distances, distances[1:]))
