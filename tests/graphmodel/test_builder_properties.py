"""Property-based dependence-graph builder invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import baseline_config
from repro.graphmodel.builder import build_graph
from repro.graphmodel.nodes import NODES_PER_UOP, Stage, node_id, node_seq
from repro.simulator.core import simulate
from repro.workloads.generator import WorkloadSpec, generate

specs = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    num_macro_ops=st.integers(min_value=10, max_value=60),
    p_load=st.floats(min_value=0.0, max_value=0.4),
    p_store=st.floats(min_value=0.0, max_value=0.2),
    p_fp_add=st.floats(min_value=0.0, max_value=0.2),
    p_branch=st.floats(min_value=0.0, max_value=0.2),
    p_fused_load_op=st.floats(min_value=0.0, max_value=1.0),
    working_set_bytes=st.sampled_from([4096, 8 << 20]),
    code_footprint_bytes=st.sampled_from([256, 65536]),
)


@st.composite
def graphs(draw):
    spec = draw(specs)
    seed = draw(st.integers(min_value=0, max_value=500))
    workload = generate(spec, seed=seed)
    result = simulate(workload, baseline_config())
    return workload, result, build_graph(result)


@given(case=graphs())
@settings(max_examples=20, deadline=None)
def test_property_edges_reference_valid_nodes(case):
    _workload, _result, graph = case
    assert (graph.edge_src >= 0).all()
    assert (graph.edge_dst >= 0).all()
    assert (graph.edge_src < graph.num_nodes).all()
    assert (graph.edge_dst < graph.num_nodes).all()


@given(case=graphs())
@settings(max_examples=20, deadline=None)
def test_property_every_uop_has_its_pipeline_chain(case):
    workload, _result, graph = case
    pairs = {
        (int(s), int(d)) for s, d in zip(graph.edge_src, graph.edge_dst)
    }
    for uop in workload:
        i = uop.seq
        chain = [
            (Stage.F, Stage.ITLB),
            (Stage.ITLB, Stage.IC),
            (Stage.IC, Stage.N),
            (Stage.N, Stage.D),
            (Stage.D, Stage.R),
            (Stage.R, Stage.E),
            (Stage.E, Stage.P),
            (Stage.RC, Stage.C),
        ]
        for src_stage, dst_stage in chain:
            assert (node_id(i, src_stage), node_id(i, dst_stage)) in pairs


@given(case=graphs())
@settings(max_examples=20, deadline=None)
def test_property_graph_is_acyclic_and_complete(case):
    _workload, _result, graph = case
    topo = graph.topological_order()
    assert len(topo) == graph.num_nodes
    assert len(set(topo)) == graph.num_nodes


@given(case=graphs())
@settings(max_examples=15, deadline=None)
def test_property_no_self_edges_and_bounded_lookback(case):
    workload, result, graph = case
    core = result.config.core
    window = max(
        core.rob_size, core.fetch_buffer, core.fetch_width,
        core.rename_width, core.dispatch_width, core.commit_width,
    )
    for s, d in zip(graph.edge_src.tolist(), graph.edge_dst.tolist()):
        assert s != d
        # Forward edges may only come from data/structural history;
        # backward (higher-seq source) edges exist only for the µop
        # commit dependency within one macro-op.
        if node_seq(s) > node_seq(d):
            assert (
                workload[node_seq(d)].macro_id
                == workload[node_seq(s)].macro_id
            )


@given(case=graphs())
@settings(max_examples=15, deadline=None)
def test_property_baseline_longest_path_tracks_simulator(case):
    _workload, result, graph = case
    predicted = graph.longest_path_length(result.config.latency)
    assert predicted == pytest.approx(result.cycles, rel=0.15)
    assert predicted <= result.cycles * 1.02
