"""Table I constraint tests: the builder must emit every edge kind."""

import pytest

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.graphmodel.builder import build_graph
from repro.graphmodel.nodes import Stage, node_id, node_seq, node_stage
from repro.isa.uop import MicroOp, OpClass, Workload
from repro.simulator.core import simulate
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.suite import make_workload


def edges_of(graph):
    """Set of (src, dst) pairs plus a charge lookup."""
    pairs = {}
    for e in range(graph.num_edges):
        key = (int(graph.edge_src[e]), int(graph.edge_dst[e]))
        pairs.setdefault(key, []).append(graph.edge_charges[e])
    return pairs


def has_edge(pairs, i, s1, j, s2):
    return (node_id(i, s1), node_id(j, s2)) in pairs


@pytest.fixture(scope="module")
def mixed_graph(tiny_workload):
    result = simulate(tiny_workload, baseline_config())
    return result, build_graph(result), edges_of(build_graph(result))


class TestFrontEndConstraints:
    def test_in_order_fetch(self, mixed_graph):
        result, graph, pairs = mixed_graph
        for i in range(1, 20):
            assert has_edge(pairs, i - 1, Stage.IC, i, Stage.F)

    def test_finite_fetch_bandwidth(self, mixed_graph):
        result, graph, pairs = mixed_graph
        fbw = result.config.core.fetch_width
        assert has_edge(pairs, 0, Stage.IC, fbw, Stage.F)
        charge = pairs[(node_id(0, Stage.IC), node_id(fbw, Stage.F))]
        assert ((EventType.BASE, 1),) in charge

    def test_finite_fetch_buffer(self, mixed_graph):
        result, graph, pairs = mixed_graph
        fbs = result.config.core.fetch_buffer
        assert has_edge(pairs, 0, Stage.N, fbs, Stage.F)

    def test_control_dependency_on_mispredictions(self, mixed_graph):
        result, graph, pairs = mixed_graph
        mispredicted = [r.seq for r in result.uops if r.mispredicted]
        assert mispredicted, "fixture needs at least one misprediction"
        for seq in mispredicted:
            if seq + 1 >= len(result.uops):
                continue
            key = (node_id(seq, Stage.P), node_id(seq + 1, Stage.F))
            assert key in pairs
            assert ((EventType.BR_MISP, 1),) in pairs[key]

    def test_fetch_pipeline_chain(self, mixed_graph):
        _result, _graph, pairs = mixed_graph
        assert has_edge(pairs, 0, Stage.F, 0, Stage.ITLB)
        assert has_edge(pairs, 0, Stage.ITLB, 0, Stage.IC)

    def test_icache_charge_on_line_openers(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        opener = next(r.seq for r in result.uops if r.fetch_charge)
        key = (node_id(opener, Stage.ITLB), node_id(opener, Stage.IC))
        events = {e for charge in pairs[key] for e, _u in charge}
        assert EventType.L1I in events


class TestMidPipelineConstraints:
    def test_rename_chain(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        core = result.config.core
        assert has_edge(pairs, 0, Stage.IC, 0, Stage.N)
        assert has_edge(pairs, 0, Stage.N, 1, Stage.N)
        assert has_edge(pairs, 0, Stage.N, core.rename_width, Stage.N)

    def test_finite_rob(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        rbs = result.config.core.rob_size
        if len(result.uops) > rbs:
            assert has_edge(pairs, 0, Stage.C, rbs, Stage.N)

    def test_dispatch_chain(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        core = result.config.core
        assert has_edge(pairs, 0, Stage.N, 0, Stage.D)
        assert has_edge(pairs, 0, Stage.D, 1, Stage.D)
        assert has_edge(pairs, 0, Stage.D, core.dispatch_width, Stage.D)

    def test_data_dependency_edges(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        for record in result.uops[:60]:
            for producer in record.data_producers:
                if producer >= 0:
                    assert has_edge(
                        pairs, producer, Stage.P, record.seq, Stage.R
                    )

    def test_execute_chain(self, mixed_graph):
        _result, _graph, pairs = mixed_graph
        assert has_edge(pairs, 0, Stage.D, 0, Stage.R)
        assert has_edge(pairs, 0, Stage.R, 0, Stage.E)
        assert has_edge(pairs, 0, Stage.E, 0, Stage.P)


class TestMemoryConstraints:
    def test_address_path_for_memory_ops(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        loads = [
            u.seq for u in result.workload if u.is_memory
        ]
        assert loads
        for seq in loads[:20]:
            assert has_edge(pairs, seq, Stage.D, seq, Stage.AR1)
            assert has_edge(pairs, seq, Stage.AR1, seq, Stage.AR2)
            assert has_edge(pairs, seq, Stage.AR2, seq, Stage.DTLB)
            assert has_edge(pairs, seq, Stage.DTLB, seq, Stage.R)

    def test_address_producers_feed_ar1(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        for record, uop in zip(result.uops, result.workload):
            if uop.is_memory:
                for producer in record.addr_producers:
                    if producer >= 0:
                        assert has_edge(
                            pairs, producer, Stage.P, record.seq, Stage.AR1
                        )

    def test_load_store_ordering(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        for record, uop in zip(result.uops, result.workload):
            if uop.is_load and record.store_barrier >= 0:
                assert has_edge(
                    pairs, record.store_barrier, Stage.E, record.seq, Stage.E
                )

    def test_agu_charge_on_address_calculation(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        load = next(u.seq for u in result.workload if u.is_load)
        key = (node_id(load, Stage.AR1), node_id(load, Stage.AR2))
        assert ((EventType.LD, 1),) in pairs[key]

    def test_non_memory_ops_have_no_address_path(self, mixed_graph):
        result, graph, pairs = mixed_graph
        alu = next(
            u.seq
            for u in result.workload
            if u.opclass is OpClass.INT_ALU
        )
        assert not has_edge(pairs, alu, Stage.D, alu, Stage.AR1)


class TestCommitConstraints:
    def test_in_order_commit(self, mixed_graph):
        _result, _graph, pairs = mixed_graph
        assert has_edge(pairs, 0, Stage.C, 1, Stage.RC)

    def test_finite_commit_width(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        cbw = result.config.core.commit_width
        assert has_edge(pairs, 0, Stage.C, cbw, Stage.RC)

    def test_uop_dependency_gates_the_som(self, mixed_graph):
        result, _graph, pairs = mixed_graph
        for uop in result.workload:
            if uop.som and not uop.eom:
                # multi-µop macro: every member's P gates the SoM's RC
                member = uop.seq
                while (
                    member < len(result.workload)
                    and result.workload[member].macro_id == uop.macro_id
                ):
                    assert has_edge(
                        pairs, member, Stage.P, uop.seq, Stage.RC
                    )
                    member += 1

    def test_commit_latency_edge(self, mixed_graph):
        _result, _graph, pairs = mixed_graph
        assert has_edge(pairs, 0, Stage.RC, 0, Stage.C)


class TestGraphVsSimulator:
    def test_baseline_error_is_small(self, mixed_graph):
        result, graph, _pairs = mixed_graph
        predicted = graph.longest_path_length(result.config.latency)
        error = abs(predicted - result.cycles) / result.cycles
        assert error < 0.05

    def test_graph_never_wildly_overshoots(self, mixed_graph):
        result, graph, _pairs = mixed_graph
        predicted = graph.longest_path_length(result.config.latency)
        assert predicted <= result.cycles * 1.05

    def test_node_helpers_round_trip(self):
        node = node_id(17, Stage.DTLB)
        assert node_seq(node) == 17
        assert node_stage(node) is Stage.DTLB
