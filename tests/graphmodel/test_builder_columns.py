"""Columnar graph builder vs the per-record reference implementation.

``build_graph_columns`` claims byte-identical output to the original
:class:`DependenceGraphBuilder` — same edges in the same order with the
same charges — for every workload and every ablation-option setting.
The reference builder is kept in the tree exactly so this suite can
hold that claim down; ``build_graph`` (the production entry point)
dispatches to the columnar builder.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.common.config import baseline_config
from repro.graphmodel.builder import (
    BuilderOptions,
    DependenceGraphBuilder,
    build_graph,
    build_graph_columns,
)
from repro.isa.uop import MicroOp, OpClass, Workload
from repro.simulator.core import simulate
from repro.workloads.kernels import STRESS_KERNELS
from repro.workloads.suite import make_workload, suite_names

MACROS = 80

_OPTION_FLAGS = sorted(
    field.name for field in dataclasses.fields(BuilderOptions)
)


def _assert_graphs_identical(columnar, reference) -> None:
    assert columnar.num_uops == reference.num_uops
    assert np.array_equal(columnar.edge_src, reference.edge_src)
    assert np.array_equal(columnar.edge_dst, reference.edge_dst)
    assert np.array_equal(columnar._events, reference._events)
    assert np.array_equal(columnar._units, reference._units)
    # The reference constructor keeps lengths implicit in the sparse
    # tuples; the packed path stores them — derive and compare both,
    # then compare the materialised sparse charges themselves.
    assert columnar._charge_lengths.tolist() == [
        len(charge) for charge in reference.edge_charges
    ]
    assert columnar.edge_charges == reference.edge_charges


def _compare(result, options=None) -> None:
    columnar = build_graph_columns(result, options=options)
    reference = DependenceGraphBuilder(result, options=options).build()
    _assert_graphs_identical(columnar, reference)


class TestSuiteEquality:
    @pytest.mark.parametrize("name", suite_names())
    def test_workload_graphs_identical(self, name):
        workload = make_workload(name, MACROS)
        _compare(simulate(workload, baseline_config()))


class TestStressKernelEquality:
    @pytest.mark.parametrize("kernel", sorted(STRESS_KERNELS))
    def test_kernel_graphs_identical(self, kernel):
        _compare(simulate(STRESS_KERNELS[kernel](), baseline_config()))


class TestAblationEquality:
    """Every single-flag ablation produces the same graph on both paths."""

    @pytest.fixture(scope="class")
    def mixed_result(self):
        return simulate(make_workload("gamess", MACROS), baseline_config())

    @pytest.mark.parametrize("flag", _OPTION_FLAGS)
    def test_single_flag_off(self, mixed_result, flag):
        options = BuilderOptions(**{flag: False})
        _compare(mixed_result, options=options)

    def test_all_flags_off(self, mixed_result):
        options = BuilderOptions(
            **{flag: False for flag in _OPTION_FLAGS}
        )
        _compare(mixed_result, options=options)


class TestWideAddressGeneration:
    """Micro-ops with three address sources (unsupported by the native

    pack, fine for the Python simulator) must still build identically
    through the columnar path — its CSR producer layout is general."""

    @pytest.fixture(scope="class")
    def wide_agen_result(self):
        uops = []
        pc = 0x1000
        for i in range(24):
            if i % 3 == 0:
                uops.append(
                    MicroOp(
                        seq=i,
                        macro_id=i,
                        som=True,
                        eom=True,
                        opclass=OpClass.LOAD,
                        pc=pc + i * 4,
                        dst_reg=i % 8,
                        mem_addr=0x8000 + (i * 64) % 4096,
                        addr_src_regs=(1 + i % 4, 9, 17),
                    )
                )
            else:
                uops.append(
                    MicroOp(
                        seq=i,
                        macro_id=i,
                        som=True,
                        eom=True,
                        opclass=OpClass.INT_ALU,
                        pc=pc + i * 4,
                        src_regs=(i % 8, (i + 3) % 8),
                        dst_reg=9 if i % 2 else 17,
                    )
                )
        workload = Workload(name="wide-agen", uops=tuple(uops))
        return simulate(workload, baseline_config(), native=False)

    def test_graphs_identical(self, wide_agen_result):
        _compare(wide_agen_result)

    def test_graphs_identical_without_address_path(self, wide_agen_result):
        _compare(
            wide_agen_result, options=BuilderOptions(address_path=False)
        )


class TestDispatch:
    def test_build_graph_uses_columnar_output(self, tiny_result):
        _assert_graphs_identical(
            build_graph(tiny_result),
            DependenceGraphBuilder(tiny_result).build(),
        )
