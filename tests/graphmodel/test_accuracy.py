"""Graph-model accuracy vs the simulator (the Fig 10 relationship)."""

import pytest

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.graphmodel.builder import build_graph
from repro.graphmodel.reeval import GraphReevalPredictor
from repro.simulator.machine import Machine
from repro.workloads.suite import make_workload

WORKLOADS = ("gamess", "mcf", "perlbench", "milc")

#: One-cycle optimisation scenarios, as in Fig 10 ("we impose one-cycle
#: latency to the combinations of up to two events").
SCENARIOS = (
    {},
    {EventType.L1D: 1},
    {EventType.FP_ADD: 1},
    {EventType.L1D: 1, EventType.FP_MUL: 1},
    {EventType.LD: 1, EventType.L1D: 1},
)


@pytest.mark.parametrize("name", WORKLOADS)
def test_graph_tracks_simulator_across_scenarios(name):
    workload = make_workload(name, 150)
    machine = Machine(workload)
    result = machine.simulate()
    graph = build_graph(result)
    base = result.config.latency
    for overrides in SCENARIOS:
        latency = base.with_overrides(overrides)
        simulated = machine.cycles(latency)
        predicted = graph.longest_path_length(latency)
        error = abs(predicted - simulated) / simulated
        assert error < 0.08, (name, overrides, predicted, simulated)


def test_reeval_predictor_wraps_longest_path(tiny_result):
    graph = build_graph(tiny_result)
    predictor = GraphReevalPredictor(graph)
    base = tiny_result.config.latency
    assert predictor.predict_cycles(base) == graph.longest_path_length(base)
    assert predictor.predict_cpi(base) == pytest.approx(
        graph.longest_path_length(base) / graph.num_uops
    )
    assert predictor.evaluations == 2


def test_graph_monotone_in_latency(tiny_result):
    graph = build_graph(tiny_result)
    base = tiny_result.config.latency
    slower = base.with_overrides({EventType.MEM_D: 266, EventType.L1D: 8})
    assert graph.longest_path_length(slower) >= graph.longest_path_length(base)
