"""Differential oracle: compiled simulator vs the Python reference.

The compiled prepass/timing kernels in ``repro.simulator.native`` claim
*bit-identical* results — same cycles, same stats, same per-µop trace
records — for every supported workload/configuration.  These tests are
the gate on that claim: the full workload suite, the stress kernels,
shrunken-structure configurations, both prefetchers, mixed
python-prepass/native-timing runs, and the explicit fallback paths.

Everything here compares through :func:`result_digest`, the canonical
SHA-256 over every behaviour-bearing field, so "equal" really means
byte-for-byte equal after serialisation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    MicroarchConfig,
    TLBConfig,
    baseline_config,
)
from repro.isa.uop import MicroOp, OpClass, Workload
from repro.obs.observer import Observer, use_observer
from repro.simulator.core import simulate
from repro.simulator.machine import Machine
from repro.simulator.native import (
    UnsupportedWorkloadError,
    load_native_sim,
    resolve_native,
    try_native_simulate,
    try_native_timing,
)
from repro.simulator.prepass import run_prepass
from repro.simulator.traceio import result_digest
from repro.workloads.kernels import STRESS_KERNELS, daxpy
from repro.workloads.suite import make_workload, suite_names

requires_native = pytest.mark.skipif(
    load_native_sim() is None,
    reason="no C compiler available (or REPRO_NATIVE=0)",
)

#: Small but non-trivial dynamic length for the 12-workload sweep.
MACROS = 150


def _assert_identical(workload, config) -> None:
    native = simulate(workload, config, native=True)
    python = simulate(workload, config, native=False)
    assert native.cycles == python.cycles
    assert native.stats == python.stats
    assert native.uops == python.uops
    assert result_digest(native) == result_digest(python)


def _tiny_structures() -> MicroarchConfig:
    """A deliberately starved machine: every structural limit binds."""
    return MicroarchConfig(
        core=CoreConfig(
            rob_size=16,
            iq_size=4,
            lsq_size=4,
            fetch_buffer=4,
            phys_regs=70,
            fu_fp=1,
            fu_long_alu=1,
            fu_load=1,
            fu_store=1,
            mshr_entries=2,
            branch_predictor="bimodal",
            branch_predictor_entries=64,
        ),
        l1i=CacheConfig(2 * 1024, 2),
        l1d=CacheConfig(2 * 1024, 2),
        l2=CacheConfig(32 * 1024, 4),
        itlb=TLBConfig(entries=4),
        dtlb=TLBConfig(entries=4),
    )


@requires_native
class TestSuiteDifferential:
    """The 12-workload native==python byte-identity gate."""

    @pytest.mark.parametrize("name", suite_names())
    def test_workload_identical(self, name):
        workload = make_workload(name, MACROS)
        _assert_identical(workload, baseline_config())


@requires_native
class TestStressDifferential:
    @pytest.mark.parametrize("kernel", sorted(STRESS_KERNELS))
    def test_stress_kernel_identical(self, kernel):
        _assert_identical(STRESS_KERNELS[kernel](), baseline_config())

    def test_tiny_structures_identical(self):
        workload = make_workload("mcf", MACROS)
        _assert_identical(workload, _tiny_structures())

    @pytest.mark.parametrize("prefetcher", ["next-line", "stride"])
    def test_prefetcher_identical(self, prefetcher):
        workload = make_workload("libquantum", MACROS)
        config = dataclasses.replace(
            baseline_config(), prefetcher=prefetcher
        )
        _assert_identical(workload, config)

    def test_taken_predictor_identical(self):
        workload = make_workload("gamess", MACROS)
        config = MicroarchConfig(
            core=CoreConfig(branch_predictor="taken")
        )
        _assert_identical(workload, config)


@requires_native
class TestMixedMode:
    def test_python_prepass_feeds_native_timing(self):
        """Interop: a Python prepass priced by the compiled timing loop."""
        workload = make_workload("gamess", MACROS)
        config = baseline_config()
        prepass = run_prepass(workload, config, native=False)
        assert prepass.packed is None
        native = try_native_timing(workload, config, prepass)
        assert native is not None
        python = simulate(workload, config, native=False)
        assert result_digest(native) == result_digest(python)

    def test_machine_reruns_share_prepass(self):
        """Machine's per-latency reruns stay identical and cached."""
        workload = make_workload("lbm", MACROS)
        config = baseline_config()
        from repro.common.events import EventType

        fast = Machine(workload, config, native=True)
        slow = Machine(workload, config, native=False)
        halved = config.latency.with_overrides(
            {EventType.L1D: 2, EventType.L2D: 6, EventType.BR_MISP: 3}
        )
        for design in (config.latency, halved):
            assert result_digest(fast.simulate(design)) == result_digest(
                slow.simulate(design)
            )

    def test_observability_spans_still_fire(self):
        """The compiled fast path must not silence instrumentation."""
        workload = daxpy(iterations=16)
        obs = Observer(enabled=True, progress_stream=None)
        with use_observer(obs):
            machine = Machine(workload, native=True)
            machine.simulate()
        totals = obs.tracer.totals_by_name()
        assert "sim.prepass" in totals
        assert "sim.run" in totals
        counters = obs.metrics.snapshot()["counters"]
        assert counters["sim.runs"] == 1
        assert counters["sim.native_runs"] == 1


class TestFallback:
    def test_native_false_forces_python(self):
        workload = daxpy(iterations=8)
        result = simulate(workload, baseline_config(), native=False)
        assert result.cycles > 0

    def test_unsupported_workload_falls_back(self):
        """>2 address sources is outside the packed layout: auto mode
        silently uses Python, explicit native=True refuses."""
        uops = (
            MicroOp(
                seq=0, macro_id=0, som=True, eom=True,
                opclass=OpClass.LOAD, pc=0, dst_reg=8,
                mem_addr=1 << 20, addr_src_regs=(1, 2, 3),
            ),
        )
        workload = Workload(name="wide-agen", uops=uops)
        config = baseline_config()
        python = simulate(workload, config, native=False)
        auto = simulate(workload, config)
        assert result_digest(auto) == result_digest(python)
        if load_native_sim() is not None:
            with pytest.raises(UnsupportedWorkloadError):
                try_native_simulate(workload, config, native=True)

    def test_gate_off_disables_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert load_native_sim() is None
        assert resolve_native(None) is None
        with pytest.raises(RuntimeError):
            resolve_native(True)
        # auto mode must still simulate correctly via the Python path
        workload = daxpy(iterations=8)
        result = simulate(workload, baseline_config())
        assert result_digest(result) == result_digest(
            simulate(workload, baseline_config(), native=False)
        )
