"""Functional pre-pass tests: latency invariance, deps, warming rules."""

import pytest

from repro.common.config import MicroarchConfig, baseline_config
from repro.common.events import EventType
from repro.isa.uop import MicroOp, OpClass, Workload
from repro.simulator.prepass import run_prepass
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.suite import make_workload


def charge_events(charge):
    return {event for event, _units in charge}


def hand_workload(uops):
    return Workload(name="hand", uops=tuple(uops))


def alu(seq, macro, srcs=(), dst=None, pc=None):
    return MicroOp(
        seq=seq, macro_id=macro, som=True, eom=True,
        opclass=OpClass.INT_ALU, pc=pc if pc is not None else seq * 4,
        src_regs=srcs, dst_reg=dst,
    )


class TestLatencyInvariance:
    def test_prepass_ignores_latency_domain(self, tiny_workload):
        base = baseline_config()
        changed = base.with_latency_overrides(
            {EventType.L1D: 1, EventType.MEM_D: 40, EventType.FP_ADD: 1}
        )
        a = run_prepass(tiny_workload, base)
        b = run_prepass(tiny_workload, changed)
        for ra, rb in zip(a.records, b.records):
            assert ra.exec_charge == rb.exec_charge
            assert ra.fetch_charge == rb.fetch_charge
            assert ra.mispredicted == rb.mispredicted
            assert ra.data_producers == rb.data_producers
        assert a.stats == b.stats


class TestDependencies:
    def test_data_producers_follow_program_order(self):
        workload = hand_workload(
            [
                alu(0, 0, dst=1),
                alu(1, 1, dst=1),
                alu(2, 2, srcs=(1,), dst=2),
            ]
        )
        result = run_prepass(workload, baseline_config())
        # The consumer must see the *latest* writer of register 1.
        assert result.records[2].data_producers == (1,)

    def test_unwritten_register_has_no_producer(self):
        workload = hand_workload([alu(0, 0, srcs=(5,), dst=1)])
        result = run_prepass(workload, baseline_config())
        assert result.records[0].data_producers == (-1,)

    def test_store_barrier_points_to_last_store(self):
        store = MicroOp(
            seq=0, macro_id=0, som=True, eom=True, opclass=OpClass.STORE,
            pc=0, mem_addr=1 << 30, src_regs=(1,), addr_src_regs=(2,),
        )
        load = MicroOp(
            seq=1, macro_id=1, som=True, eom=True, opclass=OpClass.LOAD,
            pc=4, mem_addr=(1 << 30) + 4096, dst_reg=3, addr_src_regs=(2,),
        )
        result = run_prepass(
            hand_workload([store, load]), baseline_config()
        )
        assert result.records[1].store_barrier == 0

    def test_phys_reg_bookkeeping(self):
        workload = hand_workload(
            [alu(0, 0, dst=1), alu(1, 1), alu(2, 2, dst=1)]
        )
        result = run_prepass(workload, baseline_config())
        # Every writer allocates, and frees its destination's previous
        # mapping at commit (the initial architectural mapping counts);
        # µop 1 has no destination and touches no registers.
        assert result.needs_phys_reg == [True, False, True]
        assert result.frees_reg_on_commit == [True, False, True]

    def test_macro_last_uop(self):
        uops = [
            MicroOp(seq=0, macro_id=0, som=True, eom=False,
                    opclass=OpClass.INT_ALU, pc=0, dst_reg=1),
            MicroOp(seq=1, macro_id=0, som=False, eom=True,
                    opclass=OpClass.INT_ALU, pc=0, src_regs=(1,), dst_reg=2),
            alu(2, 1),
        ]
        result = run_prepass(hand_workload(uops), baseline_config())
        assert result.macro_last_uop == [1, 1, 2]


class TestEventCharges:
    def test_line_opener_carries_fetch_charge(self):
        # 17 sequential macro-ops cross a 64-byte line boundary once.
        workload = hand_workload([alu(i, i) for i in range(17)])
        result = run_prepass(workload, baseline_config())
        openers = [
            r.seq for r in result.records if r.fetch_charge
        ]
        assert openers == [0, 16]
        assert EventType.L1I in charge_events(result.records[0].fetch_charge)

    def test_resident_load_charges_l1_only(self):
        spec = WorkloadSpec(
            name="resident", num_macro_ops=300, p_load=0.4,
            working_set_bytes=4 * 1024, code_footprint_bytes=1024,
        )
        workload = generate(spec, seed=1)
        result = run_prepass(workload, baseline_config())
        for record, uop in zip(result.records, workload):
            if uop.is_load:
                events = charge_events(record.exec_charge)
                assert EventType.L1D in events
                assert EventType.MEM_D not in events

    def test_huge_working_set_reaches_memory(self):
        workload = make_workload("mcf", 200)
        result = run_prepass(workload, baseline_config())
        memory_loads = sum(
            1
            for record in result.records
            if EventType.MEM_D in charge_events(record.exec_charge)
        )
        assert memory_loads > 10

    def test_mispredictions_counted(self, tiny_workload):
        result = run_prepass(tiny_workload, baseline_config())
        flagged = sum(1 for r in result.records if r.mispredicted)
        assert flagged == result.stats["branch_mispredictions"]

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            run_prepass(
                Workload(name="empty", uops=()), baseline_config()
            )


class TestWarmingRules:
    def test_resident_set_warm_hits(self):
        spec = WorkloadSpec(
            name="small", num_macro_ops=200, p_load=0.4,
            working_set_bytes=8 * 1024, code_footprint_bytes=1024,
        )
        workload = generate(spec, seed=2)
        warmed = run_prepass(workload, baseline_config(), warm_caches=True)
        assert warmed.stats["l1d_misses"] == 0

    def test_oversized_set_not_warmed(self):
        workload = make_workload("lbm", 150)
        warmed = run_prepass(workload, baseline_config(), warm_caches=True)
        # 16MB footprint exceeds L2: steady state misses to memory remain.
        assert warmed.stats["l2_misses"] > 0

    def test_l2_sized_set_warms_into_l2(self):
        workload = make_workload("bzip2", 200)
        warmed = run_prepass(workload, baseline_config(), warm_caches=True)
        assert warmed.stats["l2_misses"] == 0
        assert warmed.stats["l1d_misses"] > 0

    def test_cold_run_differs_from_warm(self):
        spec = WorkloadSpec(
            name="small", num_macro_ops=200, p_load=0.4,
            working_set_bytes=8 * 1024, code_footprint_bytes=1024,
        )
        workload = generate(spec, seed=2)
        cold = run_prepass(workload, baseline_config(), warm_caches=False)
        assert cold.stats["l1d_misses"] > 0
