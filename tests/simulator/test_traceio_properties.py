"""Property-based trace-archive round-trips.

:func:`save_result`/:func:`load_result` claim a lossless round-trip:
the loaded result must be value-identical to the saved one — workload
stream, records, charges, producers, witnesses, timestamps, stats and
configuration.  Hypothesis drives random simulated workloads through
the archive and compares canonical digests; the degenerate shapes
(empty trace, single µop) get explicit cases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import baseline_config
from repro.isa.uop import Workload
from repro.simulator.core import simulate
from repro.simulator.trace import SimResult
from repro.simulator.traceio import (
    load_result,
    result_digest,
    save_result,
)
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.kernels import serial_chain

specs = st.builds(
    WorkloadSpec,
    name=st.just("roundtrip"),
    num_macro_ops=st.integers(min_value=5, max_value=60),
    p_load=st.floats(min_value=0.0, max_value=0.3),
    p_store=st.floats(min_value=0.0, max_value=0.15),
    p_fp_add=st.floats(min_value=0.0, max_value=0.2),
    p_int_div=st.floats(min_value=0.0, max_value=0.05),
    p_branch=st.floats(min_value=0.0, max_value=0.2),
    p_fused_load_op=st.floats(min_value=0.0, max_value=1.0),
    working_set_bytes=st.sampled_from([4096, 262144]),
    code_footprint_bytes=st.sampled_from([256, 8192]),
)


def _round_trip(result: SimResult, tmp_path) -> SimResult:
    return load_result(save_result(result, tmp_path / "archive"))


class TestRoundTripProperties:
    @settings(max_examples=12, deadline=None)
    @given(spec=specs, seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_round_trip_is_bit_identical(
        self, spec, seed, tmp_path_factory
    ):
        workload = generate(spec, seed=seed)
        result = simulate(workload, baseline_config())
        loaded = _round_trip(
            result, tmp_path_factory.mktemp("roundtrip")
        )
        assert loaded.workload == result.workload
        assert loaded.uops == result.uops
        assert result_digest(loaded) == result_digest(result)

    @settings(max_examples=12, deadline=None)
    @given(spec=specs, seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_digest_is_stable_across_round_trips(
        self, spec, seed, tmp_path_factory
    ):
        workload = generate(spec, seed=seed)
        result = simulate(workload, baseline_config())
        tmp = tmp_path_factory.mktemp("double")
        once = _round_trip(result, tmp)
        twice = _round_trip(once, tmp)
        assert result_digest(twice) == result_digest(result)


class TestEdgeShapes:
    def test_empty_trace_round_trips(self, tmp_path):
        result = SimResult(
            workload=Workload(name="empty", uops=()),
            config=baseline_config(),
            cycles=0,
            uops=(),
            stats={},
        )
        loaded = _round_trip(result, tmp_path)
        assert len(loaded.workload) == 0
        assert loaded.uops == ()
        assert loaded.cycles == 0
        assert result_digest(loaded) == result_digest(result)

    def test_single_uop_round_trips(self, tmp_path):
        workload = serial_chain(length=1)
        result = simulate(workload, baseline_config())
        loaded = _round_trip(result, tmp_path)
        assert len(loaded.uops) == 1
        assert loaded.uops == result.uops
        assert result_digest(loaded) == result_digest(result)

    def test_digest_detects_timing_changes(self):
        """The digest must not be blind to any behaviour field."""
        from repro.common.events import EventType

        workload = serial_chain(length=8)
        base = simulate(workload, baseline_config())
        slower = simulate(
            workload,
            baseline_config().with_latency_overrides(
                {EventType.FP_ADD: 9}
            ),
        )
        assert result_digest(base) != result_digest(slower)
