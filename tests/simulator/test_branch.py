"""Branch predictor tests."""

import numpy as np
import pytest

from repro.common.config import CoreConfig
from repro.simulator.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    make_predictor,
)


def accuracy(predictor, pcs, outcomes):
    correct = 0
    for pc, taken in zip(pcs, outcomes):
        if predictor.predict_and_train(pc, taken) == taken:
            correct += 1
    return correct / len(outcomes)


def test_always_taken():
    predictor = AlwaysTakenPredictor()
    assert predictor.predict_and_train(0, True) is True
    assert predictor.predict_and_train(0, False) is True


def test_bimodal_learns_a_bias():
    predictor = BimodalPredictor(64)
    outcomes = [True] * 50
    assert accuracy(predictor, [4] * 50, outcomes) > 0.9


def test_bimodal_hysteresis_survives_single_flip():
    predictor = BimodalPredictor(64)
    for _ in range(4):
        predictor.predict_and_train(4, True)
    predictor.predict_and_train(4, False)  # one not-taken
    assert predictor.predict_and_train(4, True) is True


def test_gshare_learns_alternating_pattern():
    # A strict alternation is history-predictable but bias-unpredictable.
    predictor = GsharePredictor(1024, history_bits=8)
    outcomes = [bool(i % 2) for i in range(400)]
    warm = accuracy(predictor, [8] * 400, outcomes)
    assert warm > 0.8


def test_bimodal_cannot_learn_alternating_pattern():
    predictor = BimodalPredictor(64)
    outcomes = [bool(i % 2) for i in range(400)]
    assert accuracy(predictor, [8] * 400, outcomes) < 0.7


def test_random_branches_defeat_both():
    rng = np.random.default_rng(0)
    outcomes = list(rng.random(500) < 0.5)
    for predictor in (BimodalPredictor(1024), GsharePredictor(1024)):
        assert 0.3 < accuracy(predictor, [12] * 500, outcomes) < 0.7


def test_factory_selects_configured_kind():
    assert isinstance(
        make_predictor(CoreConfig(branch_predictor="taken")),
        AlwaysTakenPredictor,
    )
    assert isinstance(
        make_predictor(CoreConfig(branch_predictor="bimodal")),
        BimodalPredictor,
    )
    assert isinstance(
        make_predictor(CoreConfig(branch_predictor="gshare")),
        GsharePredictor,
    )


def test_predictors_reject_bad_sizes():
    with pytest.raises(ValueError):
        BimodalPredictor(0)
    with pytest.raises(ValueError):
        GsharePredictor(-1)
