"""Property-based timing-simulator invariants over random workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CoreConfig, MicroarchConfig, baseline_config
from repro.simulator.core import simulate
from repro.workloads.generator import WorkloadSpec, generate

specs = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    num_macro_ops=st.integers(min_value=20, max_value=80),
    # Ranges sum to at most 0.9 so any draw is a valid mix.
    p_load=st.floats(min_value=0.0, max_value=0.3),
    p_store=st.floats(min_value=0.0, max_value=0.1),
    p_fp_add=st.floats(min_value=0.0, max_value=0.2),
    p_fp_div=st.floats(min_value=0.0, max_value=0.05),
    p_int_div=st.floats(min_value=0.0, max_value=0.05),
    p_branch=st.floats(min_value=0.0, max_value=0.2),
    p_fused_load_op=st.floats(min_value=0.0, max_value=1.0),
    pointer_chase_fraction=st.floats(min_value=0.0, max_value=0.8),
    dep_distance_mean=st.floats(min_value=1.0, max_value=30.0),
    working_set_bytes=st.sampled_from([4096, 262144, 16 << 20]),
    code_footprint_bytes=st.sampled_from([256, 8192, 262144]),
    hard_branch_fraction=st.floats(min_value=0.0, max_value=1.0),
    alternating_branch_fraction=st.floats(min_value=0.0, max_value=0.5),
)


@st.composite
def runs(draw):
    spec = draw(specs)
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    workload = generate(spec, seed=seed)
    return workload, simulate(workload, baseline_config())


@given(case=runs())
@settings(max_examples=25, deadline=None)
def test_property_every_uop_flows_through_the_pipeline(case):
    _workload, result = case
    for record in result.uops:
        assert 0 <= record.t_fetch <= record.t_rename
        assert record.t_rename < record.t_dispatch
        assert record.t_dispatch < record.t_issue
        assert record.t_issue < record.t_complete < record.t_commit


@given(case=runs())
@settings(max_examples=25, deadline=None)
def test_property_program_order_respected(case):
    _workload, result = case
    commits = [record.t_commit for record in result.uops]
    renames = [record.t_rename for record in result.uops]
    fetches = [record.t_fetch for record in result.uops]
    for earlier, later in zip(commits, commits[1:]):
        assert later >= earlier
    for earlier, later in zip(renames, renames[1:]):
        assert later >= earlier
    for earlier, later in zip(fetches, fetches[1:]):
        assert later >= earlier


@given(case=runs())
@settings(max_examples=25, deadline=None)
def test_property_widths_respected_everywhere(case):
    _workload, result = case
    core = result.config.core
    for field, width in (
        ("t_rename", core.rename_width),
        ("t_dispatch", core.dispatch_width),
        ("t_issue", core.issue_width),
        ("t_commit", core.commit_width),
    ):
        per_cycle = {}
        for record in result.uops:
            cycle = getattr(record, field)
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= width, field


@given(case=runs())
@settings(max_examples=25, deadline=None)
def test_property_rob_occupancy_bounded(case):
    _workload, result = case
    rob_size = result.config.core.rob_size
    events = []
    for record in result.uops:
        events.append((record.t_rename, 1))
        events.append((record.t_commit, -1))
    events.sort()
    occupancy = 0
    for _cycle, delta in events:
        occupancy += delta
        assert occupancy <= rob_size


@given(case=runs())
@settings(max_examples=15, deadline=None)
def test_property_narrower_machine_never_faster(case):
    workload, result = case
    narrow = MicroarchConfig(
        core=CoreConfig(
            fetch_width=2, rename_width=2, dispatch_width=2,
            issue_width=2, commit_width=2,
        )
    )
    narrow_cycles = simulate(workload, narrow).cycles
    assert narrow_cycles >= result.cycles
