"""Columnar trace representation: round-trips, laziness, digest parity.

:mod:`repro.simulator.columns` claims the struct-of-arrays form is a
lossless, canonical re-encoding of the per-µop ``UopTrace`` records:
``from_records`` → ``to_records`` must be the identity, the canonical
byte encoding must be a pure function of content, and a ``SimResult``
built from columns must be indistinguishable (digest, records, graph)
from one built from records.  Hypothesis drives random workloads
through both directions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import baseline_config
from repro.isa.uop import Workload
from repro.simulator.columns import (
    TraceColumns,
    WorkloadColumns,
    columns_equal,
    workload_columns,
)
from repro.simulator.core import simulate
from repro.simulator.trace import SimResult
from repro.simulator.traceio import result_digest
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.kernels import serial_chain
from repro.workloads.suite import make_workload

specs = st.builds(
    WorkloadSpec,
    name=st.just("columns"),
    num_macro_ops=st.integers(min_value=5, max_value=60),
    p_load=st.floats(min_value=0.0, max_value=0.3),
    p_store=st.floats(min_value=0.0, max_value=0.15),
    p_fp_add=st.floats(min_value=0.0, max_value=0.2),
    p_int_div=st.floats(min_value=0.0, max_value=0.05),
    p_branch=st.floats(min_value=0.0, max_value=0.2),
    p_fused_load_op=st.floats(min_value=0.0, max_value=1.0),
    working_set_bytes=st.sampled_from([4096, 262144]),
    code_footprint_bytes=st.sampled_from([256, 8192]),
)


class TestTraceColumnsRoundTrip:
    def test_records_round_trip_exactly(self, tiny_result):
        columns = TraceColumns.from_records(tiny_result.uops)
        back = columns.to_records()
        assert tuple(back) == tiny_result.uops

    def test_round_trip_yields_python_scalars(self, tiny_result):
        """Materialised records must hold Python ints/bools, not numpy

        scalars — downstream equality and JSON encoding rely on it."""
        rec = TraceColumns.from_records(tiny_result.uops).to_records()[0]
        assert type(rec.t_commit) is int
        assert type(rec.mispredicted) is bool
        for event, units in rec.exec_charge:
            assert type(units) is int

    @settings(max_examples=10, deadline=None)
    @given(spec=specs, seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_from_records_to_records_identity(self, spec, seed):
        workload = generate(spec, seed=seed)
        result = simulate(workload, baseline_config(), native=False)
        columns = TraceColumns.from_records(result.uops)
        assert tuple(columns.to_records()) == result.uops
        # And re-encoding the round-tripped records is byte-stable.
        again = TraceColumns.from_records(columns.to_records())
        assert columns_equal(columns, again)
        assert columns.canonical_bytes() == again.canonical_bytes()

    def test_empty_columns(self):
        columns = TraceColumns.from_records(())
        assert columns.n == 0
        assert columns.to_records() == []
        # Empty traces still get a stable, non-empty canonical encoding.
        assert columns.canonical_bytes() == TraceColumns.from_records(
            ()
        ).canonical_bytes()


class TestWorkloadColumnsRoundTrip:
    @pytest.mark.parametrize("name", ["gamess", "mcf", "libquantum"])
    def test_uops_round_trip_exactly(self, name):
        workload = make_workload(name, 60)
        columns = WorkloadColumns.from_workload(workload)
        assert columns.to_uops() == workload.uops

    def test_memoised_per_workload(self):
        workload = make_workload("gamess", 20)
        assert workload_columns(workload) is workload_columns(workload)

    def test_distinct_workloads_distinct_bytes(self):
        a = workload_columns(make_workload("gamess", 20))
        b = workload_columns(make_workload("mcf", 20))
        assert a.canonical_bytes() != b.canonical_bytes()


class TestSimResultLaziness:
    def test_columns_result_materialises_records_lazily(self, tiny_result):
        columns = TraceColumns.from_records(tiny_result.uops)
        result = SimResult(
            workload=tiny_result.workload,
            config=tiny_result.config,
            cycles=tiny_result.cycles,
            stats=tiny_result.stats,
            columns=columns,
        )
        assert result._uops is None
        assert result.num_uops == columns.n  # no materialisation needed
        assert result._uops is None
        assert result.uops == tiny_result.uops  # lazy, then cached
        assert result._uops is not None

    def test_records_result_builds_columns_lazily(self, tiny_result):
        result = SimResult(
            workload=tiny_result.workload,
            config=tiny_result.config,
            cycles=tiny_result.cycles,
            stats=tiny_result.stats,
            uops=tiny_result.uops,
        )
        assert result._columns is None
        columns = result.columns
        assert columns_equal(
            columns, TraceColumns.from_records(tiny_result.uops)
        )
        assert result.columns is columns  # cached

    def test_requires_records_or_columns(self, tiny_result):
        with pytest.raises(ValueError):
            SimResult(
                workload=tiny_result.workload,
                config=tiny_result.config,
                cycles=0,
            )

    def test_pickle_round_trip(self, tiny_result):
        import pickle

        columns = TraceColumns.from_records(tiny_result.uops)
        result = SimResult(
            workload=tiny_result.workload,
            config=tiny_result.config,
            cycles=tiny_result.cycles,
            stats=tiny_result.stats,
            columns=columns,
        )
        back = pickle.loads(pickle.dumps(result))
        assert back.cycles == result.cycles
        assert back.uops == tiny_result.uops
        assert result_digest(back) == result_digest(result)


class TestDigestParity:
    @settings(max_examples=10, deadline=None)
    @given(spec=specs, seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_digest_agrees_between_records_and_columns(self, spec, seed):
        """digest(SimResult from columns) == digest(SimResult from records)."""
        workload = generate(spec, seed=seed)
        records_result = simulate(workload, baseline_config(), native=False)
        columns_result = SimResult(
            workload=records_result.workload,
            config=records_result.config,
            cycles=records_result.cycles,
            stats=records_result.stats,
            columns=TraceColumns.from_records(records_result.uops),
        )
        assert result_digest(columns_result) == result_digest(
            records_result
        )

    def test_empty_workload_digest_is_stable(self):
        empty = Workload(name="empty", uops=())

        def fresh(source):
            return SimResult(
                workload=empty,
                config=baseline_config(),
                cycles=0,
                stats={},
                **source,
            )

        from_records = fresh({"uops": ()})
        from_columns = fresh({"columns": TraceColumns.from_records(())})
        assert result_digest(from_records) == result_digest(from_columns)
        # Stable across processes by construction: pure function of bytes.
        assert result_digest(from_records) == result_digest(
            fresh({"uops": ()})
        )


class TestStatsCanonicalisation:
    def test_numpy_stats_values_do_not_change_digest(self):
        workload = serial_chain(length=6)
        base = simulate(workload, baseline_config(), native=False)
        numpy_stats = {
            key: np.int64(value) for key, value in base.stats.items()
        }
        twin = SimResult(
            workload=base.workload,
            config=base.config,
            cycles=base.cycles,
            stats=numpy_stats,
            uops=base.uops,
        )
        assert twin.stats == base.stats
        assert all(type(v) is int for v in twin.stats.values())
        assert result_digest(twin) == result_digest(base)

    def test_non_string_stats_keys_are_canonicalised(self, tiny_result):
        result = SimResult(
            workload=tiny_result.workload,
            config=tiny_result.config,
            cycles=tiny_result.cycles,
            stats={1: 2, "x": 3},
            uops=tiny_result.uops,
        )
        assert result.stats == {"1": 2, "x": 3}
        result_digest(result)  # must not raise
