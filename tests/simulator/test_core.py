"""Timing-simulator invariant tests."""

import pytest

from repro.common.config import CoreConfig, MicroarchConfig, baseline_config
from repro.common.events import EventType
from repro.isa.uop import MicroOp, OpClass, Workload
from repro.simulator.core import simulate
from repro.workloads.generator import WorkloadSpec, generate


def alu_chain(n, dependent=True):
    """n single-µop INT_ALU macro-ops, optionally a serial chain."""
    uops = []
    for i in range(n):
        srcs = (1,) if dependent and i > 0 else ()
        uops.append(
            MicroOp(
                seq=i, macro_id=i, som=True, eom=True,
                opclass=OpClass.INT_ALU, pc=(i % 8) * 4,
                src_regs=srcs, dst_reg=1 if dependent else (i % 32),
            )
        )
    return Workload(name="chain", uops=tuple(uops))


class TestPipelineOrdering:
    def test_commit_is_in_program_order(self, tiny_result):
        commits = [u.t_commit for u in tiny_result.uops]
        assert all(b >= a for a, b in zip(commits, commits[1:]))

    def test_stage_timestamps_are_monotone_per_uop(self, tiny_result):
        for record in tiny_result.uops:
            assert record.t_fetch <= record.t_rename
            assert record.t_rename < record.t_dispatch
            assert record.t_dispatch < record.t_ready
            assert record.t_ready <= record.t_issue
            assert record.t_issue < record.t_complete
            assert record.t_complete < record.t_commit

    def test_rename_is_in_program_order(self, tiny_result):
        renames = [u.t_rename for u in tiny_result.uops]
        assert all(b >= a for a, b in zip(renames, renames[1:]))

    def test_total_cycles_is_last_commit(self, tiny_result):
        assert tiny_result.cycles == tiny_result.uops[-1].t_commit


class TestWidthLimits:
    def test_commit_width_respected(self, tiny_result):
        width = tiny_result.config.core.commit_width
        per_cycle = {}
        for record in tiny_result.uops:
            per_cycle[record.t_commit] = per_cycle.get(record.t_commit, 0) + 1
        assert max(per_cycle.values()) <= width

    def test_issue_width_respected(self, tiny_result):
        width = tiny_result.config.core.issue_width
        per_cycle = {}
        for record in tiny_result.uops:
            per_cycle[record.t_issue] = per_cycle.get(record.t_issue, 0) + 1
        assert max(per_cycle.values()) <= width

    def test_rename_width_respected(self, tiny_result):
        width = tiny_result.config.core.rename_width
        per_cycle = {}
        for record in tiny_result.uops:
            per_cycle[record.t_rename] = per_cycle.get(record.t_rename, 0) + 1
        assert max(per_cycle.values()) <= width


class TestDataDependencies:
    def test_serial_chain_runs_at_one_ipc_ceiling(self):
        result = simulate(alu_chain(100, dependent=True), baseline_config())
        # Each ALU op takes 1 cycle and depends on the previous: issue
        # times must be strictly increasing.
        issues = [u.t_issue for u in result.uops]
        assert all(b > a for a, b in zip(issues, issues[1:]))

    def test_independent_stream_is_faster_than_chain(self):
        serial = simulate(alu_chain(200, dependent=True), baseline_config())
        parallel = simulate(alu_chain(200, dependent=False), baseline_config())
        assert parallel.cycles < serial.cycles

    def test_consumer_never_issues_before_producer_completes(self, tiny_result):
        for record in tiny_result.uops:
            for producer in record.data_producers:
                if producer >= 0:
                    assert (
                        record.t_issue
                        >= tiny_result.uops[producer].t_complete
                    )

    def test_load_waits_for_address_producers(self, tiny_result):
        for record, uop in zip(tiny_result.uops, tiny_result.workload):
            if uop.is_memory:
                for producer in record.addr_producers:
                    if producer >= 0:
                        assert (
                            record.t_issue
                            > tiny_result.uops[producer].t_complete
                        ) or (
                            record.t_issue
                            >= tiny_result.uops[producer].t_complete
                        )


class TestMemoryOrdering:
    def test_stores_issue_in_program_order(self, tiny_result):
        store_issues = [
            r.t_issue
            for r, u in zip(tiny_result.uops, tiny_result.workload)
            if u.is_store
        ]
        assert all(b >= a for a, b in zip(store_issues, store_issues[1:]))

    def test_loads_wait_for_earlier_stores(self, tiny_result):
        for record, uop in zip(tiny_result.uops, tiny_result.workload):
            if uop.is_load and record.store_barrier >= 0:
                barrier = tiny_result.uops[record.store_barrier]
                assert record.t_issue >= barrier.t_issue


class TestMacroOpCommit:
    def test_som_commits_after_whole_macro_completes(self, tiny_result):
        workload = tiny_result.workload
        for record, uop in zip(tiny_result.uops, workload):
            if not uop.som:
                continue
            member = uop.seq
            while member < len(workload) and workload[member].macro_id == uop.macro_id:
                assert record.t_commit > tiny_result.uops[member].t_complete
                member += 1


class TestLatencyResponse:
    def test_longer_memory_slows_memory_bound_run(self):
        spec = WorkloadSpec(
            name="membound", num_macro_ops=150, p_load=0.4,
            working_set_bytes=16 * 1024 * 1024, streaming_fraction=0.0,
            pointer_chase_fraction=0.8, dep_distance_mean=3.0,
        )
        workload = generate(spec, seed=3)
        base = baseline_config()
        slow = base.with_latency_overrides({EventType.MEM_D: 266})
        assert (
            simulate(workload, slow).cycles
            > simulate(workload, base).cycles
        )

    def test_fp_latency_drives_fp_chain(self):
        uops = []
        for i in range(80):
            uops.append(
                MicroOp(
                    seq=i, macro_id=i, som=True, eom=True,
                    opclass=OpClass.FP_ADD, pc=(i % 8) * 4,
                    src_regs=(1,) if i else (), dst_reg=1,
                )
            )
        workload = Workload(name="fpchain", uops=tuple(uops))
        base = baseline_config()
        fast = base.with_latency_overrides({EventType.FP_ADD: 1})
        slow_cycles = simulate(workload, base).cycles
        fast_cycles = simulate(workload, fast).cycles
        # An 80-op serial FP chain scales almost exactly with FP latency.
        assert slow_cycles - fast_cycles == pytest.approx(80 * 5, abs=20)

    def test_zero_uop_stream_rejected(self):
        with pytest.raises(ValueError):
            simulate(Workload(name="empty", uops=()), baseline_config())


class TestStructuralHazards:
    def test_small_rob_hurts(self):
        spec = WorkloadSpec(
            name="wide", num_macro_ops=200, p_load=0.3,
            working_set_bytes=8 * 1024 * 1024, dep_distance_mean=30.0,
            streaming_fraction=1.0,
        )
        workload = generate(spec, seed=1)
        big = baseline_config()
        small = MicroarchConfig(core=CoreConfig(rob_size=16, phys_regs=192))
        assert simulate(workload, small).cycles > simulate(workload, big).cycles

    def test_narrow_pipeline_hurts(self):
        workload = generate(
            WorkloadSpec(name="ilp", num_macro_ops=300, dep_distance_mean=40.0),
            seed=2,
        )
        wide = baseline_config()
        narrow = MicroarchConfig(
            core=CoreConfig(
                fetch_width=1, rename_width=1, dispatch_width=1,
                issue_width=1, commit_width=1,
            )
        )
        assert (
            simulate(workload, narrow).cycles
            >= 2 * simulate(workload, wide).cycles
        )
