"""Timing-core edge cases: tiny structures, divides, determinism."""

import pytest

from repro.common.config import CoreConfig, MicroarchConfig, baseline_config
from repro.common.events import EventType
from repro.isa.uop import MicroOp, OpClass, Workload
from repro.simulator.core import simulate
from repro.simulator.machine import Machine
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.kernels import independent_stream, serial_chain


def single_uop_workload():
    return Workload(
        name="one",
        uops=(
            MicroOp(
                seq=0, macro_id=0, som=True, eom=True,
                opclass=OpClass.INT_ALU, pc=0, dst_reg=1,
            ),
        ),
    )


class TestDegenerateSizes:
    def test_single_uop_completes(self):
        result = simulate(single_uop_workload(), baseline_config())
        assert result.cycles > 0
        assert result.uops[0].t_commit == result.cycles

    def test_width_one_everything(self):
        config = MicroarchConfig(
            core=CoreConfig(
                fetch_width=1, rename_width=1, dispatch_width=1,
                issue_width=1, commit_width=1, fetch_buffer=2,
                iq_size=2, lsq_size=2, rob_size=4, phys_regs=80,
            )
        )
        workload = generate(
            WorkloadSpec(name="w", num_macro_ops=60, p_load=0.2,
                         p_store=0.1, p_branch=0.1),
            seed=0,
        )
        result = simulate(workload, config)
        # A 1-wide machine can never beat CPI 1.
        assert result.cpi >= 1.0

    def test_tiny_iq_forces_issue_witnesses(self):
        config = MicroarchConfig(core=CoreConfig(iq_size=2))
        workload = serial_chain(OpClass.FP_ADD, 60)
        result = simulate(workload, config)
        assert any(r.iq_freer >= 0 for r in result.uops)

    def test_tiny_rob_throttles_independent_stream(self):
        small = MicroarchConfig(core=CoreConfig(rob_size=8, phys_regs=80))
        workload = independent_stream(OpClass.INT_ALU, 200)
        big_cycles = simulate(workload, baseline_config()).cycles
        small_cycles = simulate(workload, small).cycles
        assert small_cycles > big_cycles


class TestDivideUnits:
    def divide_workload(self, n=24):
        uops = []
        for i in range(n):
            uops.append(
                MicroOp(
                    seq=i, macro_id=i, som=True, eom=True,
                    opclass=OpClass.FP_DIV, pc=(i % 8) * 4,
                    dst_reg=8 + (i % 40),
                )
            )
        return Workload(name="divides", uops=tuple(uops))

    def test_divides_are_not_pipelined(self):
        config = baseline_config()
        result = simulate(self.divide_workload(24), config)
        fp_div = config.latency[EventType.FP_DIV]
        units = config.core.fu_fp
        # Lower bound: ceil(n / units) back-to-back occupancies.
        assert result.cycles >= (24 // units) * fp_div

    def test_more_divide_units_help(self):
        workload = self.divide_workload(24)
        few = MicroarchConfig(core=CoreConfig(fu_fp=1))
        many = MicroarchConfig(core=CoreConfig(fu_fp=4))
        assert (
            simulate(workload, many).cycles
            < simulate(workload, few).cycles
        )


class TestDeterminism:
    def test_repeat_runs_are_identical(self, tiny_workload):
        a = simulate(tiny_workload, baseline_config())
        b = simulate(tiny_workload, baseline_config())
        assert a.cycles == b.cycles
        assert [u.t_commit for u in a.uops] == [u.t_commit for u in b.uops]

    def test_machine_and_direct_runs_agree(self, tiny_workload):
        direct = simulate(tiny_workload, baseline_config())
        via_machine = Machine(tiny_workload).simulate()
        assert direct.cycles == via_machine.cycles

    def test_latency_round_trip_is_stable(self, tiny_workload):
        machine = Machine(tiny_workload)
        base = baseline_config().latency
        probe = base.with_overrides({EventType.L1D: 1})
        first = machine.cycles(probe)
        machine.cycles(base)
        # Re-simulating the probe must give the same answer (no state
        # leaks across runs through the shared pre-pass).
        machine._cache.clear()
        assert machine.cycles(probe) == first


class TestMispredictionPenalty:
    def branchy(self):
        return generate(
            WorkloadSpec(
                name="b", num_macro_ops=150, p_branch=0.3,
                hard_branch_fraction=1.0, code_footprint_bytes=256,
            ),
            seed=3,
        )

    def test_penalty_latency_matters(self):
        workload = self.branchy()
        cheap = baseline_config().with_latency_overrides(
            {EventType.BR_MISP: 1}
        )
        costly = baseline_config().with_latency_overrides(
            {EventType.BR_MISP: 24}
        )
        assert (
            simulate(workload, costly).cycles
            > simulate(workload, cheap).cycles
        )

    def test_fetch_stalls_behind_unresolved_branch(self):
        workload = self.branchy()
        result = simulate(workload, baseline_config())
        for record, uop in zip(result.uops, result.workload):
            if record.mispredicted and uop.seq + 1 < len(result.uops):
                follower = result.uops[uop.seq + 1]
                assert follower.t_fetch >= record.t_complete


class TestMSHRs:
    def streaming(self):
        return generate(
            WorkloadSpec(
                name="stream", num_macro_ops=200, p_load=0.4,
                working_set_bytes=8 << 20, streaming_fraction=1.0,
                dep_distance_mean=40.0, code_footprint_bytes=128,
                p_branch=0.0, p_store=0.0, p_fused_load_op=0.0,
            ),
            seed=0,
        )

    def test_default_mshrs_do_not_bind(self):
        workload = self.streaming()
        default = simulate(workload, baseline_config())
        unlimited = simulate(
            workload,
            MicroarchConfig(core=CoreConfig(mshr_entries=4096)),
        )
        assert default.cycles == unlimited.cycles

    def test_single_mshr_serialises_misses(self):
        workload = self.streaming()
        parallel = simulate(workload, baseline_config())
        serial = simulate(
            workload, MicroarchConfig(core=CoreConfig(mshr_entries=1))
        )
        assert serial.cycles > 1.5 * parallel.cycles

    def test_mlp_scales_with_mshrs(self):
        workload = self.streaming()
        cycles = [
            simulate(
                workload,
                MicroarchConfig(core=CoreConfig(mshr_entries=n)),
            ).cycles
            for n in (1, 2, 4)
        ]
        assert cycles[0] > cycles[1] > cycles[2]

    def test_zero_mshrs_rejected(self):
        with pytest.raises(Exception):
            CoreConfig(mshr_entries=0)
