"""Cross-run and cross-process simulation determinism.

The whole RpStacks pipeline assumes a simulation is a pure function of
(workload, configuration): artifact caching, sweep checkpoint/resume
and the native/Python differential all compare results produced at
different times, in different processes, on either execution path.
These tests pin that down with canonical digests — twice in the same
process, across ``parallel_map`` workers, and between worker and
parent.
"""

from __future__ import annotations

from repro.common.config import baseline_config
from repro.runtime.runner import parallel_map
from repro.simulator.core import simulate
from repro.simulator.traceio import result_digest
from repro.workloads.suite import make_workload

MACROS = 120


def _digest_of(name: str) -> str:
    workload = make_workload(name, MACROS)
    return result_digest(simulate(workload, baseline_config()))


class TestInProcess:
    def test_same_workload_twice_is_identical(self):
        assert _digest_of("gamess") == _digest_of("gamess")

    def test_rebuilt_workload_is_identical(self):
        a = make_workload("mcf", MACROS)
        b = make_workload("mcf", MACROS)
        assert a is not b
        config = baseline_config()
        assert result_digest(simulate(a, config)) == result_digest(
            simulate(b, config)
        )


class TestAcrossWorkers:
    def test_worker_pool_matches_in_process(self):
        names = ["gamess", "mcf"]
        outcomes = parallel_map(
            _digest_of, [(name,) for name in names], jobs=2
        )
        assert all(outcome.ok for outcome in outcomes)
        for name, outcome in zip(names, outcomes):
            assert outcome.value == _digest_of(name)

    def test_workers_agree_with_each_other(self):
        outcomes = parallel_map(
            _digest_of, [("lbm",), ("lbm",)], jobs=2
        )
        assert all(outcome.ok for outcome in outcomes)
        assert outcomes[0].value == outcomes[1].value
