"""Trace-archive round-trip tests."""

import numpy as np
import pytest

from repro.common.config import CoreConfig, MicroarchConfig
from repro.common.events import EventType
from repro.core.generator import generate_rpstacks
from repro.graphmodel.builder import build_graph
from repro.simulator.machine import Machine
from repro.simulator.traceio import (
    TraceFormatError,
    load_result,
    save_result,
)


@pytest.fixture(scope="module")
def archive(tiny_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "tiny"
    return save_result(tiny_result, path), tiny_result


def test_round_trip_workload(archive):
    path, original = archive
    loaded = load_result(path)
    assert loaded.workload.name == original.workload.name
    assert len(loaded.workload) == len(original.workload)
    for a, b in zip(loaded.workload, original.workload):
        assert a == b


def test_round_trip_records(archive):
    path, original = archive
    loaded = load_result(path)
    for a, b in zip(loaded.uops, original.uops):
        assert a.exec_charge == b.exec_charge
        assert a.fetch_charge == b.fetch_charge
        assert a.data_producers == b.data_producers
        assert a.store_barrier == b.store_barrier
        assert a.iq_freer == b.iq_freer
        assert a.t_commit == b.t_commit


def test_round_trip_metadata(archive):
    path, original = archive
    loaded = load_result(path)
    assert loaded.cycles == original.cycles
    assert loaded.stats == original.stats
    assert loaded.config.core == original.config.core
    assert loaded.config.latency == original.config.latency
    assert loaded.config.l2 == original.config.l2


def test_loaded_trace_builds_identical_graph(archive):
    path, original = archive
    loaded = load_result(path)
    graph_a = build_graph(original)
    graph_b = build_graph(loaded)
    assert graph_a.num_edges == graph_b.num_edges
    base = original.config.latency
    assert graph_a.longest_path_length(base) == graph_b.longest_path_length(
        base
    )


def test_loaded_trace_reproduces_rpstacks(archive):
    path, original = archive
    loaded = load_result(path)
    base = original.config.latency
    model_a = generate_rpstacks(build_graph(original), base)
    model_b = generate_rpstacks(build_graph(loaded), base)
    probe = base.with_overrides({EventType.L1D: 1, EventType.FP_ADD: 1})
    assert model_a.predict_cycles(probe) == model_b.predict_cycles(probe)


def test_non_default_structure_round_trips(tiny_workload, tmp_path):
    config = MicroarchConfig(
        core=CoreConfig(rob_size=64, branch_predictor="bimodal")
    )
    result = Machine(tiny_workload, config).simulate()
    loaded = load_result(save_result(result, tmp_path / "custom"))
    assert loaded.config.core.rob_size == 64
    assert loaded.config.core.branch_predictor == "bimodal"


def test_rejects_foreign_npz(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, values=np.arange(3))
    with pytest.raises(TraceFormatError):
        load_result(path)
