"""Machine facade tests: pre-pass sharing, memoisation, consistency."""

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.simulator.core import simulate
from repro.simulator.machine import Machine


def test_results_match_direct_simulation(tiny_workload):
    machine = Machine(tiny_workload)
    direct = simulate(tiny_workload, baseline_config())
    assert machine.cycles() == direct.cycles


def test_latency_points_are_memoised(tiny_workload):
    machine = Machine(tiny_workload)
    latency = baseline_config().latency.with_overrides({EventType.L1D: 2})
    first = machine.simulate(latency)
    second = machine.simulate(latency)
    assert first is second
    assert machine.timing_runs == 1


def test_distinct_points_simulated_separately(tiny_workload):
    machine = Machine(tiny_workload)
    base = baseline_config().latency
    machine.simulate(base)
    machine.simulate(base.with_overrides({EventType.FP_ADD: 3}))
    assert machine.timing_runs == 2


def test_cached_results_not_corrupted_by_later_runs(tiny_workload):
    machine = Machine(tiny_workload)
    base_result = machine.simulate()
    base_commit_times = [u.t_commit for u in base_result.uops]
    machine.simulate(
        baseline_config().latency.with_overrides({EventType.L1D: 1})
    )
    assert [u.t_commit for u in base_result.uops] == base_commit_times


def test_cpi_is_cycles_over_uops(tiny_workload):
    machine = Machine(tiny_workload)
    result = machine.simulate()
    assert machine.cpi() == result.cycles / len(tiny_workload)
