"""Trace archive format: path normalisation, version compat, v1 golden.

Three historical bugs are pinned here:

* ``save_result`` used to append ``.npz`` blindly, so ``trace.dat``
  landed on disk as ``trace.dat.npz`` and ``trace.npz.gz`` as
  ``trace.npz.gz.npz`` — callers then failed to find their own files.
* ``load_result`` hard-rejected any ``format_version != 1`` with an
  error that did not name the offending file or say which versions the
  build could read.
* The v1->v2 columnar rewrite must not orphan existing archives: a
  committed v1 golden archive has to keep loading bit-identically
  (same records, same digest as a fresh simulation of its recipe).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.common.config import baseline_config
from repro.simulator.core import simulate
from repro.simulator.traceio import (
    COMPAT_FORMAT_VERSION,
    FORMAT_VERSION,
    TraceFormatError,
    load_result,
    normalise_archive_path,
    result_digest,
    save_result,
)
from repro.workloads.generator import WorkloadSpec, generate

GOLDEN_V1 = pathlib.Path(__file__).parent.parent / "data" / "golden_trace_v1.npz"

#: The exact recipe the committed golden archive was produced from.
GOLDEN_SPEC = WorkloadSpec(
    name="golden-mixed",
    num_macro_ops=120,
    p_load=0.25,
    p_store=0.10,
    p_fp_add=0.10,
    p_fp_mul=0.08,
    p_fp_div=0.02,
    p_int_mul=0.04,
    p_int_div=0.01,
    p_branch=0.12,
    working_set_bytes=256 * 1024,
    code_footprint_bytes=64 * 1024,
)
GOLDEN_SEED = 7


class TestPathNormalisation:
    @pytest.mark.parametrize(
        ("requested", "expected"),
        [
            ("trace.npz", "trace.npz"),
            ("trace", "trace.npz"),
            ("trace.dat", "trace.npz"),
            ("trace.npz.gz", "trace.npz"),
            ("trace.npz.backup.old", "trace.npz"),
            ("archive.v2.dat", "archive.v2.npz"),
        ],
    )
    def test_normalise(self, requested, expected):
        got = normalise_archive_path(pathlib.Path("/tmp/traces") / requested)
        assert got == pathlib.Path("/tmp/traces") / expected

    @pytest.mark.parametrize("requested", ["trace.dat", "trace.npz.gz", "t"])
    def test_save_returns_real_path(self, requested, tiny_result, tmp_path):
        saved = save_result(tiny_result, tmp_path / requested)
        assert saved.exists()
        assert saved.name.endswith(".npz")
        assert not saved.name.endswith(".npz.npz")
        # The returned path is the one that actually loads.
        assert load_result(saved).cycles == tiny_result.cycles

    def test_save_does_not_double_suffix(self, tiny_result, tmp_path):
        saved = save_result(tiny_result, tmp_path / "trace.dat")
        assert saved == tmp_path / "trace.npz"
        assert not (tmp_path / "trace.dat.npz").exists()


class TestVersionCompat:
    def test_writer_is_v2(self, tiny_result, tmp_path):
        path = save_result(tiny_result, tmp_path / "trace.npz")
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
        assert meta["format_version"] == FORMAT_VERSION == 2

    def test_compat_floor_is_v1(self):
        assert COMPAT_FORMAT_VERSION == 1

    def test_unsupported_version_names_file_and_range(self, tmp_path):
        path = tmp_path / "future.npz"
        meta = json.dumps({"format_version": 99}).encode("utf-8")
        np.savez(path, meta_json=np.frombuffer(meta, dtype=np.uint8))
        with pytest.raises(TraceFormatError) as excinfo:
            load_result(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "99" in message
        assert f"{COMPAT_FORMAT_VERSION}..{FORMAT_VERSION}" in message

    def test_foreign_npz_names_file(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, values=np.arange(3))
        with pytest.raises(TraceFormatError) as excinfo:
            load_result(path)
        assert str(path) in str(excinfo.value)


class TestGoldenV1:
    """The committed pre-columnar archive keeps loading bit-identically."""

    @pytest.fixture(scope="class")
    def golden(self):
        assert GOLDEN_V1.exists(), "committed golden archive missing"
        return load_result(GOLDEN_V1)

    @pytest.fixture(scope="class")
    def fresh(self):
        workload = generate(GOLDEN_SPEC, seed=GOLDEN_SEED)
        return simulate(workload, baseline_config(), native=False)

    def test_loads_metadata(self, golden):
        assert golden.workload.name == "golden-mixed"
        assert golden.num_uops == 129
        assert golden.cycles == 389

    def test_digest_matches_fresh_simulation(self, golden, fresh):
        assert result_digest(golden) == result_digest(fresh)

    def test_records_match_fresh_simulation(self, golden, fresh):
        assert golden.workload == fresh.workload
        assert golden.uops == fresh.uops

    def test_resave_upgrades_to_v2_bit_identically(
        self, golden, tmp_path
    ):
        upgraded = load_result(save_result(golden, tmp_path / "v2"))
        assert upgraded.uops == golden.uops
        assert result_digest(upgraded) == result_digest(golden)
