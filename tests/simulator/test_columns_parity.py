"""Columns-vs-records parity: the full differential oracle.

The columnar fast path (native simulate -> ``TraceColumns`` with zero
per-row Python work) and the legacy record path (Python simulator, or
lazy materialisation of columns) must be *indistinguishable* end to
end: byte-identical ``result_digest``, identical dependence graphs out
of ``build_graph``, and bit-identical RpStacks predictions — across
the whole workload suite, every stress kernel, and both the in-memory
and the archive-round-trip (v2 columnar load) representations.

CI runs this module under both ``REPRO_NATIVE`` settings; the explicit
``native=True/False`` arguments here pin the two sides of each
differential regardless of the ambient default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import baseline_config
from repro.common.events import EventType
from repro.core.generator import generate_rpstacks
from repro.graphmodel.builder import build_graph
from repro.simulator.core import simulate
from repro.simulator.native import load_native_sim
from repro.simulator.traceio import (
    load_result,
    result_digest,
    save_result,
)
from repro.workloads.kernels import STRESS_KERNELS
from repro.workloads.suite import make_workload, suite_names

requires_native = pytest.mark.skipif(
    load_native_sim() is None,
    reason="no C compiler available (or REPRO_NATIVE=0)",
)

#: Dynamic length for the suite sweep (graphs + RpStacks per workload).
MACROS = 100


def _graphs_identical(a, b) -> bool:
    return (
        a.num_uops == b.num_uops
        and np.array_equal(a.edge_src, b.edge_src)
        and np.array_equal(a.edge_dst, b.edge_dst)
        and np.array_equal(a._events, b._events)
        and np.array_equal(a._units, b._units)
        and np.array_equal(a._charge_lengths, b._charge_lengths)
    )


def _assert_full_parity(workload, config, tmp_path) -> None:
    """Native-columnar vs Python-records, in memory and through disk."""
    columnar = simulate(workload, config, native=True)
    records = simulate(workload, config, native=False)

    # The native result was produced without materialising records.
    assert columnar._uops is None

    # 1. Byte-identical canonical digests.
    assert result_digest(columnar) == result_digest(records)

    # 2. Identical dependence graphs (exact edge arrays, not summaries).
    graph_c = build_graph(columnar)
    graph_r = build_graph(records)
    assert _graphs_identical(graph_c, graph_r)

    # 3. Bit-identical RpStacks predictions.
    base = config.latency
    model_c = generate_rpstacks(graph_c, base)
    model_r = generate_rpstacks(graph_r, base)
    for probe in (
        base,
        base.with_overrides({EventType.L1D: 1, EventType.FP_ADD: 1}),
        base.with_overrides({EventType.MEM_D: 400, EventType.BR_MISP: 30}),
    ):
        assert model_c.predict_cycles(probe) == model_r.predict_cycles(
            probe
        )

    # 4. The archive round-trip (v2 columnar load path) changes nothing.
    loaded = load_result(save_result(columnar, tmp_path / "parity.npz"))
    assert result_digest(loaded) == result_digest(records)
    assert _graphs_identical(build_graph(loaded), graph_r)


@requires_native
class TestSuiteParity:
    """All 12 suite workloads through the full columnar differential."""

    @pytest.mark.parametrize("name", suite_names())
    def test_workload_parity(self, name, tmp_path):
        workload = make_workload(name, MACROS)
        _assert_full_parity(workload, baseline_config(), tmp_path)


@requires_native
class TestStressKernelParity:
    """All six stress kernels through the full columnar differential."""

    @pytest.mark.parametrize("kernel", sorted(STRESS_KERNELS))
    def test_kernel_parity(self, kernel, tmp_path):
        _assert_full_parity(
            STRESS_KERNELS[kernel](), baseline_config(), tmp_path
        )
