"""Data-prefetcher tests (structure domain)."""

import pytest

from repro.common.config import ConfigError, MicroarchConfig
from repro.common.events import EventType
from repro.simulator.machine import Machine
from repro.simulator.prefetch import (
    PREFETCHER_KINDS,
    NextLinePrefetcher,
    NoPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.kernels import pointer_ring


@pytest.fixture(scope="module")
def streaming():
    """A looping unit-stride streaming kernel (per-pc strides constant)."""
    return generate(
        WorkloadSpec(
            name="loopstream", num_macro_ops=400, p_load=0.4,
            working_set_bytes=8 << 20, streaming_fraction=1.0,
            code_footprint_bytes=128, p_branch=0.0, p_store=0.0,
            p_fused_load_op=0.0,
        ),
        seed=0,
    )


def misses(workload, kind):
    result = Machine(workload, MicroarchConfig(prefetcher=kind)).simulate()
    return result.stats["l1d_misses"], result.cpi


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_prefetcher("none"), NoPrefetcher)
        assert isinstance(make_prefetcher("next-line"), NextLinePrefetcher)
        assert isinstance(make_prefetcher("stride"), StridePrefetcher)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("oracle")

    def test_config_validates_prefetcher(self):
        with pytest.raises(ConfigError):
            MicroarchConfig(prefetcher="oracle")

    def test_all_kinds_listed(self):
        assert set(PREFETCHER_KINDS) == {"none", "next-line", "stride"}

    def test_bad_table_size_rejected(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_entries=0)


class TestEffects:
    def test_next_line_helps_streaming(self, streaming):
        base_misses, base_cpi = misses(streaming, "none")
        pf_misses, pf_cpi = misses(streaming, "next-line")
        assert pf_misses < 0.7 * base_misses
        assert pf_cpi < base_cpi

    def test_stride_beats_next_line_on_strided_stream(self, streaming):
        nl_misses, _ = misses(streaming, "next-line")
        st_misses, _ = misses(streaming, "stride")
        assert st_misses < nl_misses

    def test_next_line_useless_on_large_stride(self):
        # The pointer ring hops 7 lines per access: the next line is
        # never the one needed.
        ring = pointer_ring(length=150, ring_bytes=16 << 20)
        base_misses, _ = misses(ring, "none")
        nl_misses, _ = misses(ring, "next-line")
        assert nl_misses == base_misses

    def test_stride_catches_constant_stride_chase(self):
        ring = pointer_ring(length=150, ring_bytes=16 << 20)
        base_misses, base_cpi = misses(ring, "none")
        st_misses, st_cpi = misses(ring, "stride")
        assert st_misses < 0.5 * base_misses
        assert st_cpi < 0.5 * base_cpi

    def test_random_access_defeats_both(self):
        random_loads = generate(
            WorkloadSpec(
                name="rand", num_macro_ops=300, p_load=0.4,
                working_set_bytes=8 << 20, streaming_fraction=0.0,
                code_footprint_bytes=128, p_branch=0.0,
            ),
            seed=1,
        )
        base_misses, _ = misses(random_loads, "none")
        for kind in ("next-line", "stride"):
            pf_misses, _ = misses(random_loads, kind)
            assert pf_misses > 0.8 * base_misses, kind

    def test_prefetcher_is_structure_domain(self, streaming):
        """Latency invariance holds within one prefetcher design."""
        from repro.common.config import LatencyConfig

        machine = Machine(streaming, MicroarchConfig(prefetcher="stride"))
        base = machine.simulate()
        probe = LatencyConfig().with_overrides({EventType.MEM_D: 40})
        faster = machine.simulate(probe)
        for a, b in zip(base.uops, faster.uops):
            assert a.exec_charge == b.exec_charge  # events unchanged
        assert faster.cycles < base.cycles
