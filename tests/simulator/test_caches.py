"""Cache model tests: geometry, LRU, hierarchy, plus property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.simulator.caches import AccessLevel, MemoryHierarchy, SetAssocCache


def small_cache(sets=2, ways=2, line=64):
    return SetAssocCache(CacheConfig(sets * ways * line, ways, line))


class TestSetAssocCache:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert (cache.hits, cache.misses) == (1, 1)

    def test_same_line_offsets_hit(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(63) is True
        assert cache.access(64) is False  # next line

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        a, b, c = 0, 64, 128  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now most recent
        cache.access(c)  # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_sets_are_independent(self):
        cache = small_cache(sets=2, ways=1)
        cache.access(0)      # set 0
        cache.access(64)     # set 1
        assert cache.probe(0) and cache.probe(64)

    def test_probe_does_not_disturb_lru(self):
        cache = small_cache(sets=1, ways=2)
        cache.access(0)
        cache.access(64)
        cache.probe(0)       # must NOT refresh line 0
        cache.access(128)    # evicts line 0 (oldest by access)
        assert not cache.probe(0)

    def test_reset_stats_keeps_contents(self):
        cache = small_cache()
        cache.access(0)
        cache.reset_stats()
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.probe(0)

    def test_occupancy_bounded_by_associativity(self):
        cache = small_cache(sets=1, ways=4)
        for i in range(20):
            cache.access(i * 64)
        resident = sum(cache.probe(i * 64) for i in range(20))
        assert resident == 4

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_stats_account_every_access(self, addresses):
        cache = small_cache(sets=4, ways=2)
        for addr in addresses:
            cache.access(addr)
        assert cache.hits + cache.misses == len(addresses)

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_immediate_reaccess_always_hits(self, addresses):
        cache = small_cache(sets=4, ways=2)
        for addr in addresses:
            cache.access(addr)
            assert cache.access(addr) is True


class TestMemoryHierarchy:
    def make(self):
        return MemoryHierarchy(
            CacheConfig(2 * 64, 1, 64),      # tiny L1I: 2 sets, direct
            CacheConfig(2 * 64, 1, 64),      # tiny L1D
            CacheConfig(8 * 64, 2, 64),      # small L2
        )

    def test_cold_access_goes_to_memory(self):
        assert self.make().access_data(0) is AccessLevel.MEMORY

    def test_l1_hit_after_fill(self):
        hierarchy = self.make()
        hierarchy.access_data(0)
        assert hierarchy.access_data(0) is AccessLevel.L1

    def test_l2_catches_l1_eviction(self):
        hierarchy = self.make()
        hierarchy.access_data(0)
        hierarchy.access_data(128)  # evicts line 0 from direct-mapped L1 set 0
        assert hierarchy.access_data(0) is AccessLevel.L2

    def test_instruction_and_data_l1_are_split(self):
        hierarchy = self.make()
        hierarchy.access_instruction(0)
        # The data side never saw address 0; L1D misses but L2 has it.
        assert hierarchy.access_data(0) is AccessLevel.L2

    def test_warm_does_not_count_stats(self):
        hierarchy = self.make()
        hierarchy.warm_data(0)
        hierarchy.warm_instruction(64)
        assert hierarchy.l1d.accesses == 0
        assert hierarchy.l1i.accesses == 0
        assert hierarchy.access_data(0) is AccessLevel.L1

    def test_levels_order(self):
        assert AccessLevel.L1 < AccessLevel.L2 < AccessLevel.MEMORY
