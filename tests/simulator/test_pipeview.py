"""ASCII pipeline diagram tests."""

import pytest

from repro.common.config import baseline_config
from repro.isa.uop import OpClass
from repro.simulator.core import simulate
from repro.simulator.pipeview import render_pipeline
from repro.workloads.kernels import serial_chain


@pytest.fixture(scope="module")
def chain_result():
    return simulate(serial_chain(OpClass.FP_ADD, 12), baseline_config())


def test_one_row_per_uop(chain_result):
    text = render_pipeline(chain_result, first=0, count=8)
    lines = text.splitlines()
    assert len(lines) == 9  # header + 8 rows
    assert lines[1].startswith("000")


def test_stage_letters_present_and_ordered(chain_result):
    text = render_pipeline(chain_result, first=0, count=4)
    for row in text.splitlines()[1:]:
        body = row[14:]
        for letter in ("F", "N", "D", "I", "C"):
            assert letter in body, row
        assert body.index("F") < body.index("N") < body.index("I")
        assert body.index("I") < body.rindex("C")


def test_serial_chain_issues_staircase(chain_result):
    """Each dependent FP add issues after the previous completes — the
    diagram's I markers must move strictly right."""
    text = render_pipeline(chain_result, first=0, count=6)
    issue_columns = [row.index("I") for row in text.splitlines()[1:]]
    assert all(b > a for a, b in zip(issue_columns, issue_columns[1:]))


def test_window_clipping(chain_result):
    text = render_pipeline(chain_result, first=0, count=4, max_width=30)
    assert all(len(line) <= 15 + 30 for line in text.splitlines())


def test_out_of_range_window_rejected(chain_result):
    with pytest.raises(ValueError):
        render_pipeline(chain_result, first=10 ** 6, count=4)
    with pytest.raises(ValueError):
        render_pipeline(chain_result, count=0)


def test_opclass_names_shown(chain_result):
    text = render_pipeline(chain_result, first=0, count=2)
    assert "FP_ADD" in text
