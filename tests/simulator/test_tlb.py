"""TLB model tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import TLBConfig
from repro.simulator.tlb import TLB


def make(entries=2, page=4096):
    return TLB(TLBConfig(entries=entries, page_bytes=page))


def test_miss_then_hit():
    tlb = make()
    assert tlb.access(0) is False
    assert tlb.access(100) is True  # same page
    assert (tlb.hits, tlb.misses) == (1, 1)


def test_distinct_pages_miss():
    tlb = make()
    tlb.access(0)
    assert tlb.access(4096) is False


def test_lru_replacement():
    tlb = make(entries=2)
    tlb.access(0)
    tlb.access(4096)
    tlb.access(0)          # page 0 most recent
    tlb.access(8192)       # evicts page 1
    assert tlb.access(0) is True
    assert tlb.access(4096) is False


def test_warm_installs_without_stats():
    tlb = make()
    tlb.warm(0)
    assert tlb.accesses == 0
    assert tlb.access(0) is True


def test_warm_refreshes_lru():
    tlb = make(entries=2)
    tlb.access(0)
    tlb.access(4096)
    tlb.warm(0)            # page 0 becomes most recent
    tlb.access(8192)       # must evict page 1, not page 0
    assert tlb.access(0) is True


def test_reset_stats():
    tlb = make()
    tlb.access(0)
    tlb.reset_stats()
    assert (tlb.hits, tlb.misses) == (0, 0)


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=200
    )
)
@settings(max_examples=50, deadline=None)
def test_property_capacity_never_exceeded(addresses):
    tlb = make(entries=4)
    for addr in addresses:
        tlb.access(addr)
    resident = len({a >> 12 for a in addresses})
    hits_possible = sum(1 for a in addresses)
    assert tlb.hits + tlb.misses == hits_possible
    assert tlb.misses >= min(4, resident) or resident == 0
