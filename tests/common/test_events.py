"""Event taxonomy invariants."""

import pytest

from repro.common.events import (
    EVENT_LABELS,
    LATENCY_DOMAIN,
    NUM_EVENTS,
    STRUCTURE_DOMAIN,
    EventType,
    event_label,
    parse_event,
)


def test_event_ids_are_dense():
    assert sorted(int(e) for e in EventType) == list(range(NUM_EVENTS))


def test_base_is_event_zero():
    # Reduction code relies on BASE occupying index 0 so it can slice the
    # stall-event dimensions as [1:].
    assert EventType.BASE == 0


def test_domains_partition_the_taxonomy():
    union = set(LATENCY_DOMAIN) | set(STRUCTURE_DOMAIN)
    assert union == set(EventType)
    assert not set(LATENCY_DOMAIN) & set(STRUCTURE_DOMAIN)


def test_structure_domain_contents():
    assert EventType.BASE in STRUCTURE_DOMAIN
    assert EventType.BR_MISP in STRUCTURE_DOMAIN
    assert len(STRUCTURE_DOMAIN) == 2


def test_every_event_has_a_label():
    for event in EventType:
        assert EVENT_LABELS[event]
        assert event_label(event) == EVENT_LABELS[event]


def test_labels_are_unique():
    labels = [EVENT_LABELS[e] for e in EventType]
    assert len(set(labels)) == len(labels)


@pytest.mark.parametrize(
    "name, expected",
    [
        ("FP_ADD", EventType.FP_ADD),
        ("Fadd", EventType.FP_ADD),
        ("fadd", EventType.FP_ADD),
        ("mem_d", EventType.MEM_D),
        ("BrMisp", EventType.BR_MISP),
        (" Base ", EventType.BASE),
    ],
)
def test_parse_event_accepts_names_and_labels(name, expected):
    assert parse_event(name) is expected


def test_parse_event_rejects_unknown():
    with pytest.raises(KeyError):
        parse_event("warp-drive")
