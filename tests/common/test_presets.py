"""Microarchitecture preset tests."""

import pytest

from repro.common.presets import (
    big_core,
    little_core,
    paper_baseline,
    preset,
    preset_names,
)
from repro.simulator.core import simulate
from repro.workloads.suite import make_workload


def test_lookup_by_name():
    assert preset("baseline") == paper_baseline()
    assert preset("little") == little_core()
    assert preset("big") == big_core()


def test_unknown_preset_rejected():
    with pytest.raises(KeyError, match="unknown preset"):
        preset("huge")


def test_names_cover_factories():
    for name in preset_names():
        preset(name)


def test_presets_share_the_memory_hierarchy():
    base = paper_baseline()
    for config in (little_core(), big_core()):
        assert config.l1d == base.l1d
        assert config.l2 == base.l2
        assert config.latency == base.latency


def test_width_ordering():
    assert (
        little_core().core.fetch_width
        < paper_baseline().core.fetch_width
        < big_core().core.fetch_width
    )


def test_performance_ordering():
    """The cores must actually rank on a workload that exercises their
    structural differences: ILP for the widths and windows, alternating
    branches for the predictor classes."""
    from repro.workloads.generator import WorkloadSpec, generate

    workload = generate(
        WorkloadSpec(
            name="ranker", num_macro_ops=400, p_load=0.2, p_store=0.08,
            p_fp_add=0.15, p_branch=0.18, dep_distance_mean=20.0,
            alternating_branch_fraction=0.3, hard_branch_fraction=0.0,
            working_set_bytes=16 * 1024, code_footprint_bytes=512,
        ),
        seed=5,
    )
    cycles = {
        name: simulate(workload, preset(name)).cycles
        for name in ("little", "baseline", "big")
    }
    assert cycles["big"] <= cycles["baseline"] < cycles["little"]
    assert cycles["little"] > 1.2 * cycles["big"]
