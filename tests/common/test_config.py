"""Configuration model tests, including the Table II baseline."""

import dataclasses

import numpy as np
import pytest

from repro.common.config import (
    DEFAULT_LATENCIES,
    CacheConfig,
    ConfigError,
    CoreConfig,
    LatencyConfig,
    MicroarchConfig,
    TLBConfig,
    baseline_config,
    sweep_latencies,
)
from repro.common.events import NUM_EVENTS, EventType


class TestTableII:
    """The defaults must reproduce the paper's Table II."""

    def test_queue_sizes(self):
        core = baseline_config().core
        assert (core.rob_size, core.iq_size, core.lsq_size) == (128, 36, 64)

    def test_pipeline_widths(self):
        core = baseline_config().core
        assert core.fetch_width == 4
        assert core.rename_width == 4
        assert core.dispatch_width == 4
        assert core.issue_width == 4
        assert core.commit_width == 4

    def test_functional_unit_counts(self):
        core = baseline_config().core
        assert (core.fu_load, core.fu_store) == (2, 2)
        assert (core.fu_fp, core.fu_base_alu, core.fu_long_alu) == (2, 4, 2)

    def test_functional_unit_latencies(self):
        lat = baseline_config().latency
        assert lat[EventType.LD] == 2
        assert lat[EventType.INT_MUL] == 4
        assert lat[EventType.INT_DIV] == 32
        assert lat[EventType.FP_ADD] == 6
        assert lat[EventType.FP_MUL] == 6
        assert lat[EventType.FP_DIV] == 24

    def test_cache_geometry_and_latencies(self):
        config = baseline_config()
        assert config.l1i.size_bytes == 48 * 1024
        assert config.l1i.associativity == 4
        assert config.l1d.size_bytes == 48 * 1024
        assert config.l1d.associativity == 4
        assert config.l2.size_bytes == 4 * 1024 * 1024
        assert config.l2.associativity == 8
        assert config.latency[EventType.L1I] == 2
        assert config.latency[EventType.L1D] == 4
        assert config.latency[EventType.L2D] == 12
        assert config.latency[EventType.MEM_D] == 133


class TestLatencyConfig:
    def test_default_matches_table(self):
        lat = LatencyConfig()
        for event in EventType:
            assert lat[event] == DEFAULT_LATENCIES[event]

    def test_is_hashable_and_equal_by_value(self):
        assert LatencyConfig() == LatencyConfig()
        assert hash(LatencyConfig()) == hash(LatencyConfig())
        changed = LatencyConfig().with_overrides({EventType.L1D: 1})
        assert changed != LatencyConfig()

    def test_with_overrides_only_touches_named_events(self):
        changed = LatencyConfig().with_overrides({EventType.FP_DIV: 12})
        assert changed[EventType.FP_DIV] == 12
        for event in EventType:
            if event is not EventType.FP_DIV:
                assert changed[event] == LatencyConfig()[event]

    def test_from_mapping_fills_defaults(self):
        lat = LatencyConfig.from_mapping({EventType.MEM_D: 200})
        assert lat[EventType.MEM_D] == 200
        assert lat[EventType.L1D] == 4

    def test_scaled_clamps_to_one_cycle(self):
        lat = LatencyConfig().scaled({EventType.LD: 0.1})
        assert lat[EventType.LD] == 1

    def test_scaled_rounds_to_integer_cycles(self):
        lat = LatencyConfig().scaled({EventType.FP_ADD: 0.25})
        assert lat[EventType.FP_ADD] == 2  # round(6 * 0.25)

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigError):
            LatencyConfig(cycles=(1, 2, 3))

    def test_rejects_negative_latency(self):
        cycles = list(LatencyConfig().cycles)
        cycles[EventType.L2D] = -1
        with pytest.raises(ConfigError):
            LatencyConfig(tuple(cycles))

    def test_base_latency_is_pinned_to_one(self):
        with pytest.raises(ConfigError):
            LatencyConfig().with_overrides({EventType.BASE: 2})

    def test_as_vector_prices_events_by_id(self):
        vec = LatencyConfig().as_vector()
        assert vec.shape == (NUM_EVENTS,)
        assert vec[EventType.MEM_D] == 133

    def test_describe_reports_deltas(self):
        assert LatencyConfig().describe() == "baseline"
        changed = LatencyConfig().with_overrides({EventType.L1D: 2})
        assert "L1D=2" in changed.describe()


class TestStructureConfigs:
    def test_cache_set_count(self):
        cache = CacheConfig(48 * 1024, 4, 64)
        assert cache.num_sets == 192

    def test_cache_rejects_non_divisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 3, 64)

    def test_cache_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            CacheConfig(0, 1, 64)

    def test_tlb_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=0)

    def test_core_rejects_bad_predictor(self):
        with pytest.raises(ConfigError):
            CoreConfig(branch_predictor="oracle")

    def test_core_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(fetch_width=0)

    def test_core_rejects_starved_register_file(self):
        with pytest.raises(ConfigError):
            CoreConfig(phys_regs=40, rob_size=128)

    def test_with_latency_preserves_structure(self):
        config = baseline_config()
        new_latency = LatencyConfig().with_overrides({EventType.L1D: 2})
        changed = config.with_latency(new_latency)
        assert changed.core == config.core
        assert changed.l1d == config.l1d
        assert changed.latency[EventType.L1D] == 2

    def test_microarch_is_frozen(self):
        config = baseline_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.latency = LatencyConfig()


class TestSweep:
    def test_cartesian_size(self):
        configs = sweep_latencies(
            LatencyConfig(),
            {EventType.L1D: [1, 2, 4], EventType.FP_ADD: [3, 6]},
        )
        assert len(configs) == 6

    def test_values_cover_product(self):
        configs = sweep_latencies(
            LatencyConfig(), {EventType.L1D: [1, 2], EventType.LD: [1, 2]}
        )
        pairs = {(c[EventType.L1D], c[EventType.LD]) for c in configs}
        assert pairs == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            sweep_latencies(LatencyConfig(), {EventType.L1D: []})


class TestDiff:
    def test_identical_configs_have_empty_diff(self):
        assert LatencyConfig().diff(LatencyConfig()) == {}

    def test_diff_reports_both_values(self):
        a = LatencyConfig()
        b = a.with_overrides({EventType.L1D: 2, EventType.MEM_D: 66})
        diff = a.diff(b)
        assert diff == {
            EventType.L1D: (4, 2),
            EventType.MEM_D: (133, 66),
        }

    def test_diff_is_directional(self):
        a = LatencyConfig()
        b = a.with_overrides({EventType.LD: 1})
        assert a.diff(b)[EventType.LD] == (2, 1)
        assert b.diff(a)[EventType.LD] == (1, 2)
