"""Micro-op / workload structural-invariant tests."""

import pytest

from repro.common.events import EventType
from repro.isa.uop import MicroOp, OpClass, Workload, validate_stream


def uop(seq, macro, som=True, eom=True, opclass=OpClass.INT_ALU, **kwargs):
    kwargs.setdefault("pc", seq * 4)
    return MicroOp(
        seq=seq, macro_id=macro, som=som, eom=eom, opclass=opclass, **kwargs
    )


class TestMicroOp:
    def test_memory_requires_address(self):
        with pytest.raises(ValueError):
            uop(0, 0, opclass=OpClass.LOAD)

    def test_non_memory_rejects_address(self):
        with pytest.raises(ValueError):
            uop(0, 0, opclass=OpClass.INT_ALU, mem_addr=64)

    def test_addr_sources_only_for_memory(self):
        with pytest.raises(ValueError):
            uop(0, 0, addr_src_regs=(1,))

    def test_at_most_two_data_sources(self):
        with pytest.raises(ValueError):
            uop(0, 0, src_regs=(1, 2, 3))

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            uop(-1, 0)

    def test_exec_event_mapping(self):
        assert uop(0, 0, opclass=OpClass.FP_MUL).exec_event is EventType.FP_MUL
        load = uop(0, 0, opclass=OpClass.LOAD, mem_addr=64)
        assert load.exec_event is EventType.LD
        assert load.is_load and load.is_memory and not load.is_store

    def test_branch_flags(self):
        branch = uop(0, 0, opclass=OpClass.BRANCH, taken=True)
        assert branch.is_branch and not branch.is_memory


class TestStreamValidation:
    def test_accepts_well_formed_stream(self):
        validate_stream(
            [
                uop(0, 0, som=True, eom=False),
                uop(1, 0, som=False, eom=True),
                uop(2, 1),
            ]
        )

    def test_rejects_seq_gap(self):
        with pytest.raises(ValueError, match="non-dense"):
            validate_stream([uop(0, 0), uop(2, 1)])

    def test_rejects_macro_gap(self):
        with pytest.raises(ValueError, match="macro id gap"):
            validate_stream([uop(0, 0), uop(1, 2)])

    def test_rejects_missing_som(self):
        with pytest.raises(ValueError, match="start a macro-op"):
            validate_stream([uop(0, 0, som=False, eom=True)])

    def test_rejects_som_inside_macro(self):
        with pytest.raises(ValueError, match="unexpected SoM"):
            validate_stream(
                [uop(0, 0, som=True, eom=False), uop(1, 0, som=True, eom=True)]
            )

    def test_rejects_truncated_macro(self):
        with pytest.raises(ValueError, match="ends inside"):
            validate_stream([uop(0, 0, som=True, eom=False)])

    def test_rejects_macro_id_change_mid_macro(self):
        with pytest.raises(ValueError, match="changed mid-macro"):
            validate_stream(
                [
                    uop(0, 0, som=True, eom=False),
                    uop(1, 1, som=False, eom=True),
                ]
            )


class TestWorkloadSlice:
    def make(self, macros=10, uops_per_macro=2):
        stream = []
        seq = 0
        for macro in range(macros):
            for j in range(uops_per_macro):
                stream.append(
                    uop(
                        seq,
                        macro,
                        som=(j == 0),
                        eom=(j == uops_per_macro - 1),
                    )
                )
                seq += 1
        return Workload(name="w", uops=tuple(stream))

    def test_slice_realigns_to_macro_boundaries(self):
        workload = self.make()
        piece = workload.slice(3, 7)  # cuts through macro 1 and macro 3
        assert piece[0].som
        assert piece[len(piece) - 1].eom
        # start snapped back to macro 1's SoM (seq 2), stop forward to 8.
        assert len(piece) == 6

    def test_slice_rebases_ids(self):
        piece = self.make().slice(4, 8)
        assert piece[0].seq == 0
        assert piece[0].macro_id == 0
        assert piece.num_macro_ops == 2

    def test_slice_is_a_valid_workload(self):
        piece = self.make().slice(5, 15)
        validate_stream(piece.uops)

    def test_slice_whole_stream(self):
        workload = self.make()
        piece = workload.slice(0, len(workload))
        assert len(piece) == len(workload)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            self.make().slice(4, 4)

    def test_num_macro_ops(self):
        assert self.make(macros=7).num_macro_ops == 7
